//! Chrome trace-event JSON export and a minimal parser for validation.
//!
//! The exporter emits the classic `{"traceEvents": [...]}` format understood
//! by Perfetto and `chrome://tracing`: `ph:"X"` complete events with
//! microsecond `ts`/`dur`, `ph:"i"` instants, and `ph:"M"` metadata naming
//! processes and threads. Each added [`TraceReport`] contributes up to two
//! trace *processes* — one per clock lane — so virtual (model-time) and real
//! (wall-time) tracks never share an axis.

use std::collections::BTreeMap;

use crate::report::{EventKind, Lane, TraceReport};

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn micros(seconds: f64) -> f64 {
    (seconds * 1e6 * 1000.0).round() / 1000.0
}

/// Incremental builder merging one or more [`TraceReport`]s into a single
/// Chrome trace-event JSON document.
#[derive(Debug, Default)]
pub struct ChromeTrace {
    rows: Vec<String>,
    next_pid: u32,
}

impl ChromeTrace {
    /// An empty trace document.
    #[must_use]
    pub fn new() -> Self {
        Self {
            rows: Vec::new(),
            next_pid: 1,
        }
    }

    /// Add every track of `report` under processes labelled from `label`
    /// (suffixed with the lane when both lanes are present).
    pub fn add(&mut self, label: &str, report: &TraceReport) {
        let mut pid_for_lane: BTreeMap<&'static str, u32> = BTreeMap::new();
        let lanes_present: Vec<Lane> = {
            let mut lanes = Vec::new();
            for t in report.tracks() {
                if !lanes.contains(&t.lane) {
                    lanes.push(t.lane);
                }
            }
            lanes
        };
        for lane in &lanes_present {
            let key = match lane {
                Lane::Virtual => "virtual",
                Lane::Real => "real",
            };
            let pid = self.next_pid;
            self.next_pid += 1;
            pid_for_lane.insert(key, pid);
            let name = if lanes_present.len() > 1 {
                format!("{label} ({lane})")
            } else {
                label.to_string()
            };
            self.rows.push(format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape(&name)
            ));
        }
        let pid_of = |lane: Lane| -> u32 {
            let key = match lane {
                Lane::Virtual => "virtual",
                Lane::Real => "real",
            };
            pid_for_lane.get(key).copied().unwrap_or(0)
        };
        for (tid, info) in report.tracks().iter().enumerate() {
            self.rows.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                pid_of(info.lane),
                tid,
                escape(&info.label)
            ));
        }
        for span in report.spans_lenient() {
            let info = &report.tracks()[span.track.index()];
            self.rows.push(format!(
                "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{}}}",
                escape(&span.name),
                pid_of(info.lane),
                span.track.index(),
                micros(span.start),
                micros((span.end - span.start).max(0.0)),
            ));
        }
        for ev in report.events() {
            if ev.kind == EventKind::Instant {
                let info = &report.tracks()[ev.track.index()];
                self.rows.push(format!(
                    "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{},\"tid\":{},\"ts\":{}}}",
                    escape(&ev.name),
                    pid_of(info.lane),
                    ev.track.index(),
                    micros(ev.ts),
                ));
            }
        }
    }

    /// Serialize to a Chrome trace-event JSON document.
    #[must_use]
    pub fn finish(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str(row);
            if i + 1 != self.rows.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
        out
    }
}

// ---------------------------------------------------------------------------
// Minimal JSON parser — just enough to validate our own exporter output (and
// any hand-edited trace) without external dependencies.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
    fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
    fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("json parse error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn consume(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf8 in number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.consume(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input came from &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf8"))?;
                    // INVARIANT: peek() returned Some, so rest is non-empty.
                    let c = rest.chars().next().expect("non-empty string tail");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.consume(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.consume(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.consume(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Structural summary of a parsed Chrome trace, used by tests and the
/// `trace-validate` binary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParsedChromeTrace {
    /// Count of `ph:"X"` complete events.
    pub complete_events: usize,
    /// Count of `ph:"i"` instant events.
    pub instant_events: usize,
    /// Process names by pid (from `process_name` metadata).
    pub processes: BTreeMap<u64, String>,
    /// Thread (track) names by (pid, tid) (from `thread_name` metadata).
    pub threads: BTreeMap<(u64, u64), String>,
    /// Total duration summed over complete events, in microseconds.
    pub total_dur_us: f64,
    /// Largest `ts` observed, in microseconds.
    pub max_ts_us: f64,
}

impl ParsedChromeTrace {
    /// Track labels (thread names) across all processes.
    #[must_use]
    pub fn track_labels(&self) -> Vec<&str> {
        self.threads.values().map(String::as_str).collect()
    }

    /// True when some track label satisfies `pred`.
    #[must_use]
    pub fn has_track(&self, pred: impl Fn(&str) -> bool) -> bool {
        self.threads.values().any(|t| pred(t))
    }
}

/// Parse a Chrome trace-event JSON document (object form with `traceEvents`,
/// or a bare event array) and summarise its structure.
pub fn parse_chrome_trace(input: &str) -> Result<ParsedChromeTrace, String> {
    let mut parser = Parser::new(input);
    let root = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing data after document"));
    }
    let events = match &root {
        Value::Arr(items) => items.as_slice(),
        Value::Obj(_) => match root.get("traceEvents") {
            Some(Value::Arr(items)) => items.as_slice(),
            _ => return Err("document has no traceEvents array".to_string()),
        },
        _ => return Err("document is neither an object nor an array".to_string()),
    };
    let mut out = ParsedChromeTrace::default();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i} has no ph"))?;
        let pid = ev.get("pid").and_then(Value::as_f64).unwrap_or(0.0) as u64;
        let tid = ev.get("tid").and_then(Value::as_f64).unwrap_or(0.0) as u64;
        match ph {
            "X" => {
                let ts = ev
                    .get("ts")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("complete event {i} has no ts"))?;
                let dur = ev
                    .get("dur")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("complete event {i} has no dur"))?;
                if dur < 0.0 {
                    return Err(format!("complete event {i} has negative dur"));
                }
                out.complete_events += 1;
                out.total_dur_us += dur;
                if ts + dur > out.max_ts_us {
                    out.max_ts_us = ts + dur;
                }
            }
            "i" | "I" => {
                out.instant_events += 1;
                if let Some(ts) = ev.get("ts").and_then(Value::as_f64) {
                    if ts > out.max_ts_us {
                        out.max_ts_us = ts;
                    }
                }
            }
            "M" => {
                let name = ev.get("name").and_then(Value::as_str).unwrap_or("");
                let arg = ev
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Value::as_str)
                    .unwrap_or("")
                    .to_string();
                match name {
                    "process_name" => {
                        out.processes.insert(pid, arg);
                    }
                    "thread_name" => {
                        out.threads.insert((pid, tid), arg);
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{RawEvent, TraceReport, TrackId, TrackInfo};
    use std::borrow::Cow;

    fn sample_report() -> TraceReport {
        TraceReport {
            tracks: vec![
                TrackInfo {
                    label: "stream:0".into(),
                    lane: Lane::Virtual,
                },
                TrackInfo {
                    label: "sidco-pool-0".into(),
                    lane: Lane::Real,
                },
            ],
            events: vec![
                RawEvent {
                    track: TrackId(0),
                    kind: EventKind::Open,
                    name: Cow::Borrowed("bucket 0"),
                    ts: 0.5,
                },
                RawEvent {
                    track: TrackId(0),
                    kind: EventKind::Close,
                    name: Cow::Borrowed(""),
                    ts: 1.25,
                },
                RawEvent {
                    track: TrackId(0),
                    kind: EventKind::Instant,
                    name: Cow::Borrowed("release"),
                    ts: 0.5,
                },
                RawEvent {
                    track: TrackId(1),
                    kind: EventKind::Open,
                    name: Cow::Borrowed("chunk"),
                    ts: 0.001,
                },
                RawEvent {
                    track: TrackId(1),
                    kind: EventKind::Close,
                    name: Cow::Borrowed(""),
                    ts: 0.002,
                },
            ],
            metrics: Default::default(),
            dropped: 0,
        }
    }

    #[test]
    fn export_then_parse_roundtrips_structure() {
        let mut chrome = ChromeTrace::new();
        chrome.add("run \"a\"", &sample_report());
        let json = chrome.finish();
        let parsed = parse_chrome_trace(&json).expect("valid json");
        assert_eq!(parsed.complete_events, 2);
        assert_eq!(parsed.instant_events, 1);
        // Two lanes → two processes, labelled with the lane.
        assert_eq!(parsed.processes.len(), 2);
        assert!(parsed
            .processes
            .values()
            .any(|p| p.contains("model time") && p.contains("run \"a\"")));
        assert!(parsed.has_track(|t| t == "stream:0"));
        assert!(parsed.has_track(|t| t == "sidco-pool-0"));
        // 0.75 s + 1 ms, in µs.
        assert!((parsed.total_dur_us - 751_000.0).abs() < 1e-6);
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(parse_chrome_trace("{").is_err());
        assert!(parse_chrome_trace("{\"traceEvents\": 3}").is_err());
        assert!(parse_chrome_trace("[{\"ph\":\"X\",\"ts\":0}]").is_err()); // no dur
        assert!(parse_chrome_trace("[] trailing").is_err());
        assert!(parse_chrome_trace("[]").is_ok());
    }

    #[test]
    fn parser_handles_escapes_and_numbers() {
        let doc = r#"{"traceEvents":[{"ph":"M","name":"thread_name","pid":1,"tid":2,
            "args":{"name":"a\"b\\cA"}},
            {"ph":"X","pid":1,"tid":2,"ts":1.5e3,"dur":0.25,"name":"n"}]}"#;
        let parsed = parse_chrome_trace(doc).expect("valid");
        assert_eq!(
            parsed.threads.get(&(1, 2)).map(String::as_str),
            Some("a\"b\\cA")
        );
        assert_eq!(parsed.complete_events, 1);
        assert_eq!(parsed.max_ts_us, 1500.25);
    }
}
