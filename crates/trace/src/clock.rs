//! Virtual (model-time) clock.

/// A monotone model-time clock measured in seconds.
///
/// `VirtualClock` is the **only** time source the simulator in `crates/dist`
/// is allowed to use for trace timestamps (`sidco-lint` bans wall-clock reads
/// there). It is a plain `f64` accumulator: advancing it performs exactly the
/// same floating-point additions the simulator's own cost accounting
/// performs, so routing model time through the clock cannot perturb results.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VirtualClock {
    now: f64,
}

impl VirtualClock {
    /// A clock starting at `start` seconds of model time.
    #[must_use]
    pub fn new(start: f64) -> Self {
        Self { now: start }
    }

    /// Current model time in seconds.
    #[must_use]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advance by `dt` seconds (`dt` may be zero; negative `dt` is ignored
    /// so the clock stays monotone even on degenerate cost inputs).
    pub fn advance_by(&mut self, dt: f64) {
        if dt > 0.0 {
            self.now += dt;
        }
    }

    /// Jump forward to absolute model time `t`; earlier times are ignored,
    /// keeping the clock monotone (DES event loops routinely re-visit the
    /// current instant).
    pub fn advance_to(&mut self, t: f64) {
        if t > self.now {
            self.now = t;
        }
    }
}

impl Default for VirtualClock {
    fn default() -> Self {
        Self::new(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_are_monotone() {
        let mut c = VirtualClock::new(1.0);
        c.advance_by(0.5);
        assert_eq!(c.now(), 1.5);
        c.advance_by(-2.0);
        assert_eq!(c.now(), 1.5);
        c.advance_to(1.0);
        assert_eq!(c.now(), 1.5);
        c.advance_to(3.0);
        assert_eq!(c.now(), 3.0);
    }

    #[test]
    fn matches_plain_accumulation_bitwise() {
        // The trainer replaces `clock += dt` with `clock.advance_by(dt)`;
        // both must produce bit-identical sums.
        let steps = [0.1, 0.37, 1e-9, 42.5, 0.001];
        let mut plain = 0.25f64;
        let mut clock = VirtualClock::new(0.25);
        for dt in steps {
            plain += dt;
            clock.advance_by(dt);
        }
        assert_eq!(plain.to_bits(), clock.now().to_bits());
    }
}
