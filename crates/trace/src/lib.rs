//! `sidco-trace`: a structured span/event recorder for the SIDCo workspace.
//!
//! The crate provides one process-wide [`TraceRegistry`] fed by per-thread
//! lock-free ring buffers, a **dual clock** model, a small metrics registry
//! (counters / gauges / fixed-bucket histograms), and two exporters: Chrome
//! trace-event JSON (loadable in Perfetto or `chrome://tracing`) and a compact
//! text flamegraph-style summary.
//!
//! # Dual clocks
//!
//! Events carry timestamps in **seconds** on one of two lanes:
//!
//! * [`Lane::Virtual`] — model time produced by a [`VirtualClock`], advanced
//!   by the discrete-event simulator in `crates/dist`. The simulator never
//!   reads a wall clock (`sidco-lint` enforces this); every virtual timestamp
//!   is derived from modeled costs, so traced runs are bit-identical to
//!   untraced runs.
//! * [`Lane::Real`] — monotonic wall time measured from the start of the
//!   active [`TraceSession`]. Used by the thread pool in `crates/runtime` and
//!   the compression engine in `crates/core`.
//!
//! The Chrome exporter places the two lanes in separate trace *processes* so
//! the incompatible time axes are never drawn on a shared track.
//!
//! # Zero cost when disabled
//!
//! [`global_sink`] performs a single relaxed atomic load. When no session is
//! active it returns a no-op [`TraceSink`] whose record methods are a branch
//! on a `None` and inline away; no allocation, no clock read, no lock. The
//! workspace property tests assert that traced and untraced training runs
//! produce bit-identical results.
//!
//! # Recording model
//!
//! Producers push [`RawEvent`]s (open / close / instant) into a bounded
//! single-producer single-consumer ring owned by their thread; the registry
//! drains all rings when the session finishes. Per-track event order is
//! meaningful because each track is only ever written by one thread (virtual
//! tracks by the simulating thread, real-lane thread tracks by their owner),
//! so open/close pairing is a simple per-track stack ([`TraceReport::spans`]).

mod chrome;
mod clock;
mod metrics;
mod registry;
mod report;
mod ring;

pub use chrome::{parse_chrome_trace, ChromeTrace, ParsedChromeTrace};
pub use clock::VirtualClock;
pub use metrics::{Histogram, MetricsFrame};
pub use registry::{global, global_sink, RealSpanGuard, TraceRegistry, TraceSession, TraceSink};
pub use report::{CompleteSpan, EventKind, Lane, RawEvent, TraceReport, TrackId, TrackInfo};
