//! Bounded single-producer single-consumer event ring.
//!
//! Each recording thread owns exactly one [`EventRing`] (registered in the
//! global registry on first use); only that thread ever pushes, and only the
//! registry — holding its state lock — ever drains. That SPSC discipline is
//! what makes the two unsafe slot accesses below sound, and it keeps the
//! producer path lock-free: a push is two atomic loads, one slot write and
//! one atomic store.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::report::RawEvent;

/// Events each thread can buffer between drains. Sessions drain only when
/// they finish, so this bounds a whole run; overflow increments a drop
/// counter instead of blocking or reallocating.
pub(crate) const RING_CAPACITY: usize = 1 << 15;

pub(crate) struct EventRing {
    slots: Box<[UnsafeCell<MaybeUninit<RawEvent>>]>,
    /// Next slot to read (consumer-owned, producer only loads it).
    head: AtomicUsize,
    /// Next slot to write (producer-owned, consumer only loads it).
    tail: AtomicUsize,
    dropped: AtomicU64,
}

// SAFETY: the SPSC protocol (one fixed producer thread, drains serialized by
// the registry state lock) guarantees a slot is never accessed from two
// threads at once: the producer writes slot `i` strictly before its Release
// store of `tail = i + 1`, and the consumer reads slot `i` only after an
// Acquire load observes `tail > i`.
unsafe impl Sync for EventRing {}
// SAFETY: RawEvent is Send; ownership of buffered events moves with the ring.
unsafe impl Send for EventRing {}

impl EventRing {
    pub(crate) fn new() -> Self {
        let mut slots = Vec::with_capacity(RING_CAPACITY);
        for _ in 0..RING_CAPACITY {
            slots.push(UnsafeCell::new(MaybeUninit::uninit()));
        }
        Self {
            slots: slots.into_boxed_slice(),
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Producer side; must only be called from the owning thread.
    pub(crate) fn push(&self, ev: RawEvent) {
        // Relaxed: tail is only ever written by this same thread.
        let tail = self.tail.load(Ordering::Relaxed);
        // Acquire: pairs with the consumer's Release store of head, so the
        // slot freed by the consumer is visible before we overwrite it.
        let head = self.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) >= RING_CAPACITY {
            // Relaxed: a monotone statistic, nothing is inferred from it.
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let slot = &self.slots[tail % RING_CAPACITY];
        // SAFETY: `tail - head < capacity` means this slot is not readable by
        // the consumer, and only this (producer) thread writes slots; the
        // Release store below publishes the write before it becomes readable.
        unsafe { (*slot.get()).write(ev) };
        // Release: publishes the slot write above to the consumer's Acquire
        // load of tail.
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
    }

    /// Consumer side; callers must hold the registry state lock (serializing
    /// all drains) for the SPSC claim to hold.
    pub(crate) fn drain_into(&self, out: &mut Vec<RawEvent>) {
        // Acquire: pairs with the producer's Release store of tail, making
        // every slot write up to `tail` visible here.
        let tail = self.tail.load(Ordering::Acquire);
        // Relaxed: head is only written under the same registry lock.
        let mut head = self.head.load(Ordering::Relaxed);
        while head != tail {
            let slot = &self.slots[head % RING_CAPACITY];
            // SAFETY: `head < tail` and the Acquire load above mean the
            // producer fully initialised this slot and will not touch it
            // again until we advance head; ptr::read moves the value out.
            out.push(unsafe { (*slot.get()).assume_init_read() });
            head = head.wrapping_add(1);
        }
        // Release: hands the consumed slots back to the producer's Acquire
        // load of head.
        self.head.store(head, Ordering::Release);
    }

    /// Discard any buffered events (between sessions); same locking
    /// requirement as [`EventRing::drain_into`].
    pub(crate) fn clear(&self) {
        let mut sink = Vec::new();
        self.drain_into(&mut sink);
    }

    /// Take and reset the drop counter.
    pub(crate) fn take_dropped(&self) -> u64 {
        // Relaxed: a monotone statistic read during the serialized drain.
        self.dropped.swap(0, Ordering::Relaxed)
    }
}

impl Drop for EventRing {
    fn drop(&mut self) {
        // Unread events own heap data (Cow::Owned names); drop them properly.
        self.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{EventKind, TrackId};
    use std::borrow::Cow;
    use std::sync::Arc;

    fn ev(i: usize) -> RawEvent {
        RawEvent {
            track: TrackId(0),
            kind: EventKind::Instant,
            name: Cow::Owned(format!("e{i}")),
            ts: i as f64,
        }
    }

    #[test]
    fn fifo_order_preserved() {
        let ring = EventRing::new();
        for i in 0..100 {
            ring.push(ev(i));
        }
        let mut out = Vec::new();
        ring.drain_into(&mut out);
        assert_eq!(out.len(), 100);
        for (i, e) in out.iter().enumerate() {
            assert_eq!(e.name, format!("e{i}"));
        }
    }

    #[test]
    fn overflow_counts_drops() {
        let ring = EventRing::new();
        for i in 0..RING_CAPACITY + 7 {
            ring.push(ev(i));
        }
        assert_eq!(ring.take_dropped(), 7);
        let mut out = Vec::new();
        ring.drain_into(&mut out);
        assert_eq!(out.len(), RING_CAPACITY);
    }

    #[test]
    fn concurrent_producer_consumer() {
        let ring = Arc::new(EventRing::new());
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..10_000 {
                    ring.push(ev(i));
                }
            })
        };
        // Drain concurrently with the producer (single consumer thread, so
        // the SPSC contract holds without the registry lock).
        let mut out = Vec::new();
        while out.len() < 10_000 {
            ring.drain_into(&mut out);
            std::thread::yield_now();
        }
        producer.join().expect("producer panicked");
        assert_eq!(out.len(), 10_000);
        for (i, e) in out.iter().enumerate() {
            assert_eq!(e.ts, i as f64);
        }
    }
}
