//! Gradient-vector substrate for the SIDCo gradient-compression library.
//!
//! The compressors in `sidco-core` and the distributed-training simulator in
//! `sidco-dist` manipulate gradients exclusively through the types and free
//! functions defined here:
//!
//! * [`dense`] — owned dense gradient vectors ([`GradientVector`](dense::GradientVector))
//!   with the usual BLAS-1 style operations (norms, axpy, scaling).
//! * [`sparse`] — the wire format of a compressed gradient
//!   ([`SparseGradient`](sparse::SparseGradient)): index/value pairs plus the original
//!   length, with scatter/gather back into dense form.
//! * [`topk`] — exact Top-k selection with three interchangeable algorithms
//!   (full sort, binary heap, quickselect) so the baselines match what the paper
//!   measured on CPU and GPU.
//! * [`threshold`] — linear-time threshold scans (count, select, both) used by every
//!   threshold-estimation compressor.
//! * [`sampling`] — random sub-sampling used by DGC.
//! * [`compressibility`] — the power-law decay and σ_k analyses behind Definition 1 /
//!   Figure 7 of the paper.
//! * [`parallel`] — chunked multi-threaded primitives (moments, counts,
//!   selection, partial Top-k, encoding) executed on a `sidco_runtime`
//!   [`Runtime`](sidco_runtime::Runtime) (persistent work-stealing pool or
//!   per-call scoped threads) for the large ImageNet-scale vectors,
//!   bit-identical across runtimes and thread counts by construction.
//!
//! # Example
//!
//! ```
//! use sidco_tensor::dense::GradientVector;
//! use sidco_tensor::threshold::select_above_threshold;
//!
//! let grad = GradientVector::from_vec(vec![0.5, -0.01, 0.2, -0.9]);
//! let sparse = select_above_threshold(grad.as_slice(), 0.3);
//! assert_eq!(sparse.nnz(), 2);
//! assert_eq!(sparse.dense_len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compressibility;
pub mod dense;
pub mod encoding;
pub mod parallel;
pub mod sampling;
pub mod sparse;
pub mod threshold;
pub mod topk;

pub use dense::GradientVector;
pub use sparse::SparseGradient;
