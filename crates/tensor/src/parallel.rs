//! Chunked multi-threaded primitives for large gradient vectors.
//!
//! The ImageNet-scale benchmarks in the paper compress vectors with up to 144M
//! elements; a single pass is memory-bandwidth bound, so these helpers split the
//! buffer into contiguous chunks and execute them on a
//! [`Runtime`](sidco_runtime::Runtime) — either per-call scoped threads
//! ([`ScopedFallback`](sidco_runtime::ScopedFallback), the `threads`-taking
//! wrappers below) or the persistent NUMA-aware work-stealing pool
//! ([`WorkStealing`](sidco_runtime::WorkStealing)) via the `*_on` variants.
//!
//! # Determinism contract
//!
//! Every function here partitions its input into chunks of a **fixed chunk size**
//! ([`DEFAULT_CHUNK_SIZE`] unless the caller picks another), *never* a size derived
//! from the requested thread count or runtime. Each chunk writes its partial
//! result into its own slot, and slots are always merged in chunk order. The
//! runtime therefore only decides *where and when* the (identical) chunk list
//! executes, so every reduction and selection below is **bit-identical across
//! runtimes, thread counts, and steal orders**. The engine in `sidco-core`
//! builds on this to guarantee that compressors produce the same
//! `SparseGradient` at 1, 2 or 64 threads, on the pool or on scoped threads.
//! (Across *machines* the guarantee holds up to platform `libm` rounding: the
//! moment passes call `ln`, whose last bit may differ between libc
//! implementations, which can move a fitted threshold by one ulp.)

use crate::sparse::SparseGradient;
use crate::threshold::cap_largest;
use crate::topk::{top_k, TopKAlgorithm};
use sidco_runtime::{Runtime, ScopedFallback};
use sidco_stats::moments::{AbsMoments, SignedMoments};
use std::sync::Mutex;

/// Default number of elements per chunk (64Ki). Small enough to expose
/// parallelism on megabyte-scale gradients, large enough that the per-chunk
/// bookkeeping is negligible.
pub const DEFAULT_CHUNK_SIZE: usize = 1 << 16;

/// Applies `f` to every fixed-size chunk of `data`, using up to `threads`
/// per-call scoped workers, and returns the per-chunk results **in chunk
/// order**. Equivalent to [`map_chunks_on`] with a
/// [`ScopedFallback`](sidco_runtime::ScopedFallback) runtime. A `threads`
/// value of 0 is treated as 1 (sequential), matching the pre-runtime
/// behaviour of this function.
///
/// # Panics
///
/// Panics if `chunk_size == 0`.
pub fn map_chunks<T, R, F>(data: &[T], chunk_size: usize, threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    map_chunks_on(data, chunk_size, &ScopedFallback::new(threads.max(1)), f)
}

/// Applies `f` to every fixed-size chunk of `data` on an explicit
/// [`Runtime`], and returns the per-chunk results **in chunk order**.
///
/// The chunk decomposition depends only on `chunk_size`, and every chunk
/// writes its result into its own pre-allocated slot, so the result vector is
/// identical for every runtime, worker count, and steal order.
///
/// `f` receives the chunk index and the chunk slice; the element offset of chunk
/// `c` is `c * chunk_size`.
///
/// # Panics
///
/// Panics if `chunk_size == 0`.
pub fn map_chunks_on<T, R, F>(data: &[T], chunk_size: usize, runtime: &dyn Runtime, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    let num_chunks = data.len().div_ceil(chunk_size);
    if num_chunks == 0 {
        return Vec::new();
    }
    if runtime.parallelism() <= 1 || num_chunks == 1 {
        return data
            .chunks(chunk_size)
            .enumerate()
            .map(|(c, chunk)| f(c, chunk))
            .collect();
    }
    // One slot per chunk: the runtime decides where each index runs, the slot
    // layout (and the in-order drain below) fixes the merge order.
    let slots: Vec<Mutex<Option<R>>> = (0..num_chunks).map(|_| Mutex::new(None)).collect();
    runtime.run_indexed(num_chunks, &|c| {
        let start = c * chunk_size;
        let end = (start + chunk_size).min(data.len());
        let result = f(c, &data[start..end]);
        *slots[c].lock().expect("chunk slot poisoned") = Some(result);
    });
    slots
        .into_iter()
        .enumerate()
        .map(|(c, slot)| {
            slot.into_inner()
                .expect("chunk slot poisoned")
                .unwrap_or_else(|| panic!("runtime never executed chunk {c}"))
        })
        .collect()
}

/// Computes [`AbsMoments`] of a gradient using up to `threads` worker threads
/// over [`DEFAULT_CHUNK_SIZE`]-element chunks.
///
/// Bit-identical across thread counts (see the module docs); within
/// floating-point reassociation error of [`AbsMoments::compute`].
pub fn abs_moments_parallel(grad: &[f32], threads: usize) -> AbsMoments {
    abs_moments_chunked(grad, DEFAULT_CHUNK_SIZE, threads)
}

/// [`abs_moments_parallel`] with an explicit chunk size.
pub fn abs_moments_chunked(grad: &[f32], chunk_size: usize, threads: usize) -> AbsMoments {
    abs_moments_on(grad, chunk_size, &ScopedFallback::new(threads.max(1)))
}

/// [`abs_moments_chunked`] on an explicit [`Runtime`].
pub fn abs_moments_on(grad: &[f32], chunk_size: usize, runtime: &dyn Runtime) -> AbsMoments {
    let parts = map_chunks_on(grad, chunk_size, runtime, |_, chunk| {
        AbsMoments::compute(chunk)
    });
    merge_abs_moments(&parts)
}

/// Computes the shifted exceedance moments (`|g| - threshold` for
/// `|g| >= threshold`, the peaks-over-threshold input of Lemma 2) in fixed-size
/// chunks using up to `threads` worker threads.
pub fn exceedance_moments_chunked(
    grad: &[f32],
    threshold: f64,
    chunk_size: usize,
    threads: usize,
) -> AbsMoments {
    exceedance_moments_on(
        grad,
        threshold,
        chunk_size,
        &ScopedFallback::new(threads.max(1)),
    )
}

/// [`exceedance_moments_chunked`] on an explicit [`Runtime`].
pub fn exceedance_moments_on(
    grad: &[f32],
    threshold: f64,
    chunk_size: usize,
    runtime: &dyn Runtime,
) -> AbsMoments {
    let parts = map_chunks_on(grad, chunk_size, runtime, |_, chunk| {
        AbsMoments::compute_exceedances(chunk, threshold)
    });
    merge_abs_moments(&parts)
}

/// Computes [`SignedMoments`] in fixed-size chunks using up to `threads` worker
/// threads (the Gaussian-fit input of the GaussianKSGD baseline).
pub fn signed_moments_chunked(grad: &[f32], chunk_size: usize, threads: usize) -> SignedMoments {
    signed_moments_on(grad, chunk_size, &ScopedFallback::new(threads.max(1)))
}

/// [`signed_moments_chunked`] on an explicit [`Runtime`].
pub fn signed_moments_on(grad: &[f32], chunk_size: usize, runtime: &dyn Runtime) -> SignedMoments {
    let parts = map_chunks_on(grad, chunk_size, runtime, |_, chunk| {
        SignedMoments::compute(chunk)
    });
    merge_signed_moments(&parts)
}

/// Counts elements with `|g| >= threshold` using up to `threads` worker threads
/// over [`DEFAULT_CHUNK_SIZE`]-element chunks. Exact (integer sum), so always
/// equal to [`crate::threshold::count_above_threshold`].
pub fn count_above_threshold_parallel(grad: &[f32], threshold: f64, threads: usize) -> usize {
    count_above_threshold_chunked(grad, threshold, DEFAULT_CHUNK_SIZE, threads)
}

/// [`count_above_threshold_parallel`] with an explicit chunk size.
pub fn count_above_threshold_chunked(
    grad: &[f32],
    threshold: f64,
    chunk_size: usize,
    threads: usize,
) -> usize {
    count_above_threshold_on(
        grad,
        threshold,
        chunk_size,
        &ScopedFallback::new(threads.max(1)),
    )
}

/// [`count_above_threshold_chunked`] on an explicit [`Runtime`].
pub fn count_above_threshold_on(
    grad: &[f32],
    threshold: f64,
    chunk_size: usize,
    runtime: &dyn Runtime,
) -> usize {
    map_chunks_on(grad, chunk_size, runtime, |_, chunk| {
        crate::threshold::count_above_threshold(chunk, threshold)
    })
    .into_iter()
    .sum()
}

/// Parallel `C_η` operator: selects all elements with `|g| >= threshold` into a
/// sparse gradient using per-chunk index/value buffers that are concatenated in
/// chunk order — no re-sorting is needed because chunk order *is* index order.
///
/// Bit-identical to [`crate::threshold::select_above_threshold`] for every
/// `threads` and `chunk_size` value (the per-element comparison is unchanged).
pub fn select_above_threshold_chunked(
    grad: &[f32],
    threshold: f64,
    chunk_size: usize,
    threads: usize,
) -> SparseGradient {
    select_above_threshold_on(
        grad,
        threshold,
        chunk_size,
        &ScopedFallback::new(threads.max(1)),
    )
}

/// [`select_above_threshold_chunked`] on an explicit [`Runtime`].
pub fn select_above_threshold_on(
    grad: &[f32],
    threshold: f64,
    chunk_size: usize,
    runtime: &dyn Runtime,
) -> SparseGradient {
    let t = threshold as f32;
    let parts: Vec<(Vec<u32>, Vec<f32>)> = map_chunks_on(grad, chunk_size, runtime, |c, chunk| {
        let offset = (c * chunk_size) as u32;
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for (i, &g) in chunk.iter().enumerate() {
            if g.abs() >= t {
                indices.push(offset + i as u32);
                values.push(g);
            }
        }
        (indices, values)
    });
    concat_sparse_parts(parts, grad.len())
}

/// Parallel exact Top-k via chunked partial selection: each chunk selects its
/// own top `min(k, chunk_len)` candidates, then one exact selection over the
/// (much smaller) candidate set picks the global top `k`.
///
/// The effective chunk size is raised to at least `2k` so every chunk discards
/// at least half of its elements — a smaller chunk would nominate itself
/// wholesale and degenerate into a sequential full materialisation.
///
/// Ties at the selection boundary are broken deterministically by ascending
/// index, and the returned indices are sorted ascending, so the result depends
/// only on `(grad, k, chunk_size)` — never on `threads`. Uses quickselect
/// within each chunk; [`top_k_chunked_with`] exposes the per-chunk algorithm.
pub fn top_k_chunked(grad: &[f32], k: usize, chunk_size: usize, threads: usize) -> SparseGradient {
    top_k_chunked_with(grad, k, chunk_size, threads, TopKAlgorithm::QuickSelect)
}

/// [`top_k_chunked`] with an explicit per-chunk selection algorithm (the
/// algorithm can change which tied-magnitude candidates each chunk nominates,
/// but never the result's dependence on the thread count).
pub fn top_k_chunked_with(
    grad: &[f32],
    k: usize,
    chunk_size: usize,
    threads: usize,
    algorithm: TopKAlgorithm,
) -> SparseGradient {
    top_k_on_with(
        grad,
        k,
        chunk_size,
        &ScopedFallback::new(threads.max(1)),
        algorithm,
    )
}

/// [`top_k_chunked`] on an explicit [`Runtime`] (quickselect per chunk).
pub fn top_k_on(
    grad: &[f32],
    k: usize,
    chunk_size: usize,
    runtime: &dyn Runtime,
) -> SparseGradient {
    top_k_on_with(grad, k, chunk_size, runtime, TopKAlgorithm::QuickSelect)
}

/// [`top_k_chunked_with`] on an explicit [`Runtime`].
pub fn top_k_on_with(
    grad: &[f32],
    k: usize,
    chunk_size: usize,
    runtime: &dyn Runtime,
    algorithm: TopKAlgorithm,
) -> SparseGradient {
    let k = k.min(grad.len());
    if k == 0 {
        return SparseGradient::empty(grad.len());
    }
    if k == grad.len() {
        let indices: Vec<u32> = (0..grad.len() as u32).collect();
        return SparseGradient::new(indices, grad.to_vec(), grad.len());
    }
    // Keep every chunk at least 2k elements so the partial stage always
    // discards at least half of each chunk; a smaller chunk would nominate
    // itself wholesale. The effective size is a pure function of
    // (k, chunk_size) — never of `threads` — so determinism per
    // configuration holds.
    let chunk_size = chunk_size.max(2 * k);
    let parts: Vec<(Vec<u32>, Vec<f32>)> = map_chunks_on(grad, chunk_size, runtime, |c, chunk| {
        let offset = (c * chunk_size) as u32;
        let local = top_k(chunk, k.min(chunk.len()), algorithm);
        let mut pairs: Vec<(u32, f32)> = local.iter().map(|(i, v)| (offset + i, v)).collect();
        pairs.sort_by_key(|&(i, _)| i);
        pairs.into_iter().unzip()
    });
    let total: usize = parts.iter().map(|(i, _)| i.len()).sum();
    let mut candidates = Vec::with_capacity(total);
    for (indices, values) in parts {
        candidates.extend(indices.into_iter().zip(values));
    }
    // Global cut over the (index-sorted) candidates: cap_largest applies the
    // same magnitude-descending / index-ascending tie-break contract.
    cap_largest(SparseGradient::from_pairs(candidates, grad.len()), k)
}

/// Concatenates per-chunk `(indices, values)` buffers into one sparse gradient,
/// reserving the exact total size first.
fn concat_sparse_parts(parts: Vec<(Vec<u32>, Vec<f32>)>, dense_len: usize) -> SparseGradient {
    let total: usize = parts.iter().map(|(i, _)| i.len()).sum();
    let mut indices = Vec::with_capacity(total);
    let mut values = Vec::with_capacity(total);
    for (i, v) in parts {
        indices.extend(i);
        values.extend(v);
    }
    SparseGradient::new(indices, values, dense_len)
}

/// Merges per-chunk absolute moments into the moments of the concatenated data.
///
/// A single part is returned as-is (bit-exact with the sequential computation);
/// multiple parts are combined in slice order so the result is deterministic for
/// a fixed chunk decomposition.
fn merge_abs_moments(parts: &[AbsMoments]) -> AbsMoments {
    if parts.len() == 1 {
        return parts[0];
    }
    let total: usize = parts.iter().map(|p| p.count).sum();
    if total == 0 {
        return AbsMoments {
            count: 0,
            positive_count: 0,
            mean: 0.0,
            variance: 0.0,
            mean_ln: 0.0,
            max: 0.0,
        };
    }
    let positive: usize = parts.iter().map(|p| p.positive_count).sum();
    let n = total as f64;
    let mean = parts.iter().map(|p| p.mean * p.count as f64).sum::<f64>() / n;
    // E[X²] per part = var + mean², combine then re-centre.
    let second_moment = parts
        .iter()
        .map(|p| (p.variance + p.mean * p.mean) * p.count as f64)
        .sum::<f64>()
        / n;
    let variance = (second_moment - mean * mean).max(0.0);
    let mean_ln = if positive > 0 {
        parts
            .iter()
            .map(|p| p.mean_ln * p.positive_count as f64)
            .sum::<f64>()
            / positive as f64
    } else {
        0.0
    };
    let max = parts.iter().fold(0.0f64, |m, p| m.max(p.max));
    AbsMoments {
        count: total,
        positive_count: positive,
        mean,
        variance,
        mean_ln,
        max,
    }
}

/// Merges per-chunk signed moments into the moments of the concatenated data.
fn merge_signed_moments(parts: &[SignedMoments]) -> SignedMoments {
    if parts.len() == 1 {
        return parts[0];
    }
    let total: usize = parts.iter().map(|p| p.count).sum();
    if total == 0 {
        return SignedMoments {
            count: 0,
            mean: 0.0,
            variance: 0.0,
            min: 0.0,
            max: 0.0,
        };
    }
    let n = total as f64;
    let mean = parts.iter().map(|p| p.mean * p.count as f64).sum::<f64>() / n;
    let second_moment = parts
        .iter()
        .map(|p| (p.variance + p.mean * p.mean) * p.count as f64)
        .sum::<f64>()
        / n;
    let variance = (second_moment - mean * mean).max(0.0);
    let min = parts
        .iter()
        .filter(|p| p.count > 0)
        .fold(f64::INFINITY, |m, p| m.min(p.min));
    let max = parts
        .iter()
        .filter(|p| p.count > 0)
        .fold(f64::NEG_INFINITY, |m, p| m.max(p.max));
    SignedMoments {
        count: total,
        mean,
        variance,
        min,
        max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_gradient(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
    }

    #[test]
    fn parallel_moments_match_sequential() {
        let grad = random_gradient(300_000, 61);
        let seq = AbsMoments::compute(&grad);
        for threads in [1, 2, 4, 8] {
            let par = abs_moments_parallel(&grad, threads);
            assert_eq!(par.count, seq.count);
            assert_eq!(par.positive_count, seq.positive_count);
            assert!((par.mean - seq.mean).abs() < 1e-9);
            assert!((par.variance - seq.variance).abs() < 1e-9);
            assert!((par.mean_ln - seq.mean_ln).abs() < 1e-9);
            assert!((par.max - seq.max).abs() < 1e-12);
        }
    }

    #[test]
    fn moments_are_bit_identical_across_thread_counts() {
        // The satellite guarantee: chunking depends only on the chunk size, so
        // every thread count produces the exact same bits.
        let grad = random_gradient(500_000, 71);
        let reference = abs_moments_parallel(&grad, 1);
        for threads in [2, 3, 4, 7, 16] {
            assert_eq!(abs_moments_parallel(&grad, threads), reference);
        }
        let signed_ref = signed_moments_chunked(&grad, 1 << 12, 1);
        let exceed_ref = exceedance_moments_chunked(&grad, 0.5, 1 << 12, 1);
        for threads in [2, 5, 9] {
            assert_eq!(signed_moments_chunked(&grad, 1 << 12, threads), signed_ref);
            assert_eq!(
                exceedance_moments_chunked(&grad, 0.5, 1 << 12, threads),
                exceed_ref
            );
        }
    }

    #[test]
    fn parallel_count_matches_sequential() {
        let grad = random_gradient(300_000, 62);
        let seq = crate::threshold::count_above_threshold(&grad, 0.5);
        for threads in [1, 3, 7] {
            assert_eq!(count_above_threshold_parallel(&grad, 0.5, threads), seq);
        }
    }

    #[test]
    fn small_inputs_fall_back_to_sequential() {
        let grad = random_gradient(100, 63);
        let par = abs_moments_parallel(&grad, 8);
        let seq = AbsMoments::compute(&grad);
        assert_eq!(par, seq);
        assert_eq!(
            count_above_threshold_parallel(&grad, 0.2, 8),
            crate::threshold::count_above_threshold(&grad, 0.2)
        );
    }

    #[test]
    fn merge_handles_empty_parts() {
        let empty = AbsMoments::compute(&[]);
        let merged = merge_abs_moments(&[empty, empty]);
        assert_eq!(merged.count, 0);
        assert_eq!(merged.mean, 0.0);
        let merged = merge_signed_moments(&[SignedMoments::compute(&[]); 2]);
        assert_eq!(merged.count, 0);
        assert_eq!(merged.min, 0.0);
    }

    #[test]
    fn map_chunks_preserves_chunk_order() {
        let data: Vec<f32> = (0..1000).map(|i| i as f32).collect();
        for threads in [1, 2, 3, 8] {
            let firsts = map_chunks(&data, 64, threads, |c, chunk| (c, chunk[0]));
            assert_eq!(firsts.len(), 1000usize.div_ceil(64));
            for (c, &(idx, first)) in firsts.iter().enumerate() {
                assert_eq!(idx, c);
                assert_eq!(first, (c * 64) as f32);
            }
        }
        assert!(map_chunks(&[] as &[f32], 64, 4, |_, _| 0).is_empty());
    }

    #[test]
    fn pool_and_scoped_runtimes_produce_identical_bits() {
        use sidco_runtime::{NumaTopology, WorkStealing};
        let grad = random_gradient(100_000, 77);
        let scoped = ScopedFallback::new(1);
        // A multi-socket synthetic topology forces cross-socket placement and
        // stealing even on single-socket hosts.
        let pool = WorkStealing::with_topology(4, NumaTopology::synthetic(2, 2));
        for chunk in [97usize, 1 << 12] {
            assert_eq!(
                abs_moments_on(&grad, chunk, &pool),
                abs_moments_on(&grad, chunk, &scoped)
            );
            assert_eq!(
                signed_moments_on(&grad, chunk, &pool),
                signed_moments_on(&grad, chunk, &scoped)
            );
            assert_eq!(
                exceedance_moments_on(&grad, 0.4, chunk, &pool),
                exceedance_moments_on(&grad, 0.4, chunk, &scoped)
            );
            assert_eq!(
                count_above_threshold_on(&grad, 0.4, chunk, &pool),
                count_above_threshold_on(&grad, 0.4, chunk, &scoped)
            );
            assert_eq!(
                select_above_threshold_on(&grad, 0.4, chunk, &pool),
                select_above_threshold_on(&grad, 0.4, chunk, &scoped)
            );
            assert_eq!(
                top_k_on(&grad, 1_717, chunk, &pool),
                top_k_on(&grad, 1_717, chunk, &scoped)
            );
        }
        let stats = pool.stats();
        assert!(stats.chunks_executed > 0);
        assert_eq!(stats.threads_spawned, 4);
    }

    #[test]
    fn parallel_select_is_bit_identical_to_sequential() {
        let grad = random_gradient(200_000, 64);
        let seq = crate::threshold::select_above_threshold(&grad, 0.4);
        for threads in [1, 2, 7] {
            for chunk in [97, 1 << 12, 1 << 20] {
                let par = select_above_threshold_chunked(&grad, 0.4, chunk, threads);
                assert_eq!(par, seq);
            }
        }
    }

    #[test]
    fn chunked_topk_matches_count_and_magnitudes() {
        let grad = random_gradient(50_000, 65);
        for &k in &[1usize, 17, 500, 5_000] {
            let exact = top_k(&grad, k, TopKAlgorithm::FullSort);
            let mut exact_mags: Vec<f32> = exact.values().iter().map(|v| v.abs()).collect();
            exact_mags.sort_by(|a, b| b.partial_cmp(a).unwrap());
            let reference = top_k_chunked(&grad, k, 1 << 10, 1);
            for threads in [2, 4, 7] {
                assert_eq!(top_k_chunked(&grad, k, 1 << 10, threads), reference);
            }
            assert_eq!(reference.nnz(), k);
            let mut mags: Vec<f32> = reference.values().iter().map(|v| v.abs()).collect();
            mags.sort_by(|a, b| b.partial_cmp(a).unwrap());
            assert_eq!(mags, exact_mags, "k={k}");
        }
    }

    #[test]
    fn chunked_topk_breaks_ties_by_index() {
        let grad = [1.0f32; 64];
        let s = top_k_chunked(&grad, 10, 8, 4);
        assert_eq!(s.nnz(), 10);
        let expected: Vec<u32> = (0..10).collect();
        assert_eq!(s.indices(), expected.as_slice());
    }

    #[test]
    fn chunked_topk_edge_cases() {
        let grad = [1.0f32, -2.0, 3.0];
        assert_eq!(top_k_chunked(&grad, 0, 2, 4).nnz(), 0);
        assert_eq!(top_k_chunked(&grad, 3, 2, 4).nnz(), 3);
        assert_eq!(top_k_chunked(&grad, 10, 2, 4).nnz(), 3);
        assert_eq!(top_k_chunked(&[], 5, 2, 4).nnz(), 0);
    }
}
