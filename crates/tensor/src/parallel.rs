//! Chunked multi-threaded reductions for large gradient vectors.
//!
//! The ImageNet-scale benchmarks in the paper compress vectors with up to 144M
//! elements; a single pass is memory-bandwidth bound, so these helpers split the
//! buffer into contiguous chunks and reduce them on crossbeam scoped threads. They
//! are drop-in replacements for the sequential reductions used by the estimators and
//! are exercised by the device-profile micro-benchmarks.

use crossbeam::thread;
use sidco_stats::moments::AbsMoments;

/// Minimum number of elements per chunk below which spawning threads is not worth it.
const MIN_CHUNK: usize = 1 << 16;

/// Computes [`AbsMoments`] of a gradient using up to `threads` worker threads.
///
/// Falls back to the sequential implementation for small inputs or `threads <= 1`.
/// The result is identical (up to floating-point reassociation) to
/// [`AbsMoments::compute`].
pub fn abs_moments_parallel(grad: &[f32], threads: usize) -> AbsMoments {
    if threads <= 1 || grad.len() < 2 * MIN_CHUNK {
        return AbsMoments::compute(grad);
    }
    let threads = threads.min(grad.len() / MIN_CHUNK).max(1);
    let chunk_size = grad.len().div_ceil(threads);
    let partials: Vec<AbsMoments> = thread::scope(|s| {
        let handles: Vec<_> = grad
            .chunks(chunk_size)
            .map(|chunk| s.spawn(move |_| AbsMoments::compute(chunk)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("moment worker panicked"))
            .collect()
    })
    .expect("crossbeam scope failed");
    merge_abs_moments(&partials)
}

/// Counts elements with `|g| >= threshold` using up to `threads` worker threads.
pub fn count_above_threshold_parallel(grad: &[f32], threshold: f64, threads: usize) -> usize {
    if threads <= 1 || grad.len() < 2 * MIN_CHUNK {
        return crate::threshold::count_above_threshold(grad, threshold);
    }
    let threads = threads.min(grad.len() / MIN_CHUNK).max(1);
    let chunk_size = grad.len().div_ceil(threads);
    thread::scope(|s| {
        let handles: Vec<_> = grad
            .chunks(chunk_size)
            .map(|chunk| {
                s.spawn(move |_| crate::threshold::count_above_threshold(chunk, threshold))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("count worker panicked"))
            .sum()
    })
    .expect("crossbeam scope failed")
}

/// Merges per-chunk absolute moments into the moments of the concatenated data.
fn merge_abs_moments(parts: &[AbsMoments]) -> AbsMoments {
    let total: usize = parts.iter().map(|p| p.count).sum();
    if total == 0 {
        return AbsMoments {
            count: 0,
            positive_count: 0,
            mean: 0.0,
            variance: 0.0,
            mean_ln: 0.0,
            max: 0.0,
        };
    }
    let positive: usize = parts.iter().map(|p| p.positive_count).sum();
    let n = total as f64;
    let mean = parts.iter().map(|p| p.mean * p.count as f64).sum::<f64>() / n;
    // E[X²] per part = var + mean², combine then re-centre.
    let second_moment = parts
        .iter()
        .map(|p| (p.variance + p.mean * p.mean) * p.count as f64)
        .sum::<f64>()
        / n;
    let variance = (second_moment - mean * mean).max(0.0);
    let mean_ln = if positive > 0 {
        parts
            .iter()
            .map(|p| p.mean_ln * p.positive_count as f64)
            .sum::<f64>()
            / positive as f64
    } else {
        0.0
    };
    let max = parts.iter().fold(0.0f64, |m, p| m.max(p.max));
    AbsMoments {
        count: total,
        positive_count: positive,
        mean,
        variance,
        mean_ln,
        max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_gradient(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
    }

    #[test]
    fn parallel_moments_match_sequential() {
        let grad = random_gradient(300_000, 61);
        let seq = AbsMoments::compute(&grad);
        for threads in [1, 2, 4, 8] {
            let par = abs_moments_parallel(&grad, threads);
            assert_eq!(par.count, seq.count);
            assert_eq!(par.positive_count, seq.positive_count);
            assert!((par.mean - seq.mean).abs() < 1e-9);
            assert!((par.variance - seq.variance).abs() < 1e-9);
            assert!((par.mean_ln - seq.mean_ln).abs() < 1e-9);
            assert!((par.max - seq.max).abs() < 1e-12);
        }
    }

    #[test]
    fn parallel_count_matches_sequential() {
        let grad = random_gradient(300_000, 62);
        let seq = crate::threshold::count_above_threshold(&grad, 0.5);
        for threads in [1, 3, 7] {
            assert_eq!(count_above_threshold_parallel(&grad, 0.5, threads), seq);
        }
    }

    #[test]
    fn small_inputs_fall_back_to_sequential() {
        let grad = random_gradient(100, 63);
        let par = abs_moments_parallel(&grad, 8);
        let seq = AbsMoments::compute(&grad);
        assert_eq!(par, seq);
        assert_eq!(
            count_above_threshold_parallel(&grad, 0.2, 8),
            crate::threshold::count_above_threshold(&grad, 0.2)
        );
    }

    #[test]
    fn merge_handles_empty_parts() {
        let empty = AbsMoments::compute(&[]);
        let merged = merge_abs_moments(&[empty, empty]);
        assert_eq!(merged.count, 0);
        assert_eq!(merged.mean, 0.0);
    }
}
