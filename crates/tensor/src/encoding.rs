//! Wire encodings for sparse gradients.
//!
//! The default wire format (4-byte index + 4-byte value per element) doubles the
//! payload relative to the values alone. The paper cites follow-up work on cheaper
//! index encodings (Huffman/entropy coding of the index stream); this module
//! implements the two standard practical options so the network model can account
//! for them:
//!
//! * [`delta_varint_encode`] — sort indices, delta-encode, LEB128-varint the gaps
//!   (small gaps at high densities cost 1–2 bytes instead of 4); the index
//!   stream shards across workers with per-chunk boundary-gap stitching
//!   ([`delta_varint_encode_parallel`]), byte-identical to the serial encoder;
//! * [`bitmap_encode`] — a `d`-bit presence bitmap plus the packed values, which wins
//!   whenever the density exceeds ~1/32.
//!
//! [`best_encoding`] picks the cheapest of the three for a given sparse gradient,
//! which is what a production integration would transmit.

use crate::sparse::SparseGradient;

/// Which wire encoding a sparse gradient was packed with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EncodingKind {
    /// Raw `(u32 index, f32 value)` pairs.
    RawPairs,
    /// Sorted indices, delta + LEB128 varint encoded, followed by packed values.
    DeltaVarint,
    /// Presence bitmap of `d` bits followed by packed values.
    Bitmap,
}

/// An encoded sparse gradient: the chosen encoding plus the byte payload.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedGradient {
    kind: EncodingKind,
    bytes: Vec<u8>,
    dense_len: usize,
    nnz: usize,
}

impl EncodedGradient {
    /// The encoding that was used.
    pub fn kind(&self) -> EncodingKind {
        self.kind
    }

    /// Total wire size in bytes.
    pub fn wire_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Number of encoded non-zero elements.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Length of the original dense vector.
    pub fn dense_len(&self) -> usize {
        self.dense_len
    }

    /// The raw payload.
    pub fn payload(&self) -> &[u8] {
        &self.bytes
    }
}

fn push_varint(out: &mut Vec<u8>, mut value: u32) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(bytes: &[u8], cursor: &mut usize) -> Option<u32> {
    let mut value = 0u32;
    let mut shift = 0u32;
    loop {
        let byte = *bytes.get(*cursor)?;
        *cursor += 1;
        value |= ((byte & 0x7f) as u32) << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
        if shift > 28 {
            return None;
        }
    }
}

/// Encodes a sparse gradient as raw `(u32, f32)` pairs (the baseline format whose
/// size [`SparseGradient::wire_bytes`] reports).
pub fn raw_encode(sparse: &SparseGradient) -> EncodedGradient {
    let mut bytes = Vec::with_capacity(sparse.nnz() * 8);
    for (i, v) in sparse.iter() {
        bytes.extend_from_slice(&i.to_le_bytes());
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    EncodedGradient {
        kind: EncodingKind::RawPairs,
        bytes,
        dense_len: sparse.dense_len(),
        nnz: sparse.nnz(),
    }
}

/// Parallel variant of [`raw_encode`]: the pair stream is split into fixed-size
/// chunks encoded concurrently (up to `threads` workers) and concatenated in
/// chunk order, so the payload is **byte-identical** to [`raw_encode`] for
/// every thread count. Uses 32Ki-pair shards; [`raw_encode_chunked`] exposes
/// the shard size.
pub fn raw_encode_parallel(sparse: &SparseGradient, threads: usize) -> EncodedGradient {
    raw_encode_chunked(sparse, 1 << 15, threads)
}

/// [`raw_encode_parallel`] with an explicit number of pairs per shard.
///
/// # Panics
///
/// Panics if `pairs_per_chunk` is zero.
pub fn raw_encode_chunked(
    sparse: &SparseGradient,
    pairs_per_chunk: usize,
    threads: usize,
) -> EncodedGradient {
    raw_encode_on(
        sparse,
        pairs_per_chunk,
        &sidco_runtime::ScopedFallback::new(threads.max(1)),
    )
}

/// [`raw_encode_chunked`] on an explicit [`Runtime`](sidco_runtime::Runtime).
pub fn raw_encode_on(
    sparse: &SparseGradient,
    pairs_per_chunk: usize,
    runtime: &dyn sidco_runtime::Runtime,
) -> EncodedGradient {
    let values = sparse.values();
    let parts = crate::parallel::map_chunks_on(
        sparse.indices(),
        pairs_per_chunk,
        runtime,
        |c, idx_chunk| {
            let offset = c * pairs_per_chunk;
            let mut bytes = Vec::with_capacity(idx_chunk.len() * 8);
            for (j, &i) in idx_chunk.iter().enumerate() {
                bytes.extend_from_slice(&i.to_le_bytes());
                bytes.extend_from_slice(&values[offset + j].to_le_bytes());
            }
            bytes
        },
    );
    let mut bytes = Vec::with_capacity(sparse.nnz() * 8);
    for part in parts {
        bytes.extend(part);
    }
    EncodedGradient {
        kind: EncodingKind::RawPairs,
        bytes,
        dense_len: sparse.dense_len(),
        nnz: sparse.nnz(),
    }
}

/// Encodes a sparse gradient with sorted delta-varint indices followed by the values
/// (re-ordered to match the sorted index order).
pub fn delta_varint_encode(sparse: &SparseGradient) -> EncodedGradient {
    let mut pairs: Vec<(u32, f32)> = sparse.iter().collect();
    pairs.sort_by_key(|&(i, _)| i);
    let mut bytes = Vec::with_capacity(sparse.nnz() * 5);
    push_varint(&mut bytes, sparse.nnz() as u32);
    let mut prev = 0u32;
    for &(i, _) in &pairs {
        let gap = i - prev;
        push_varint(&mut bytes, gap);
        prev = i;
    }
    for &(_, v) in &pairs {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    EncodedGradient {
        kind: EncodingKind::DeltaVarint,
        bytes,
        dense_len: sparse.dense_len(),
        nnz: sparse.nnz(),
    }
}

/// Minimum index/value pairs **per engaged worker** before sharding the
/// varint encoder pays off. Below this the shard bookkeeping (per-shard
/// allocations, dispatch, and the concatenating copy) costs more than the
/// encoding it parallelises: the committed `runtime_pool` bench measured the
/// sharded encoder 2–3× *slower* than serial on 2.3M pairs whenever the
/// engaged workers outnumbered the hardware threads, and the serial encoder
/// already moves >100M pairs/s — so a worker needs a six-figure pair count
/// to amortise its share of the overhead.
pub const MIN_ENCODE_PAIRS_PER_WORKER: usize = 1 << 17;

/// How many workers are worth engaging to shard-encode `nnz` pairs on a host
/// with `host_threads` hardware threads: never more than the hardware can run
/// concurrently (oversubscribed shards only add contention), and never so
/// many that a worker's share drops below
/// [`MIN_ENCODE_PAIRS_PER_WORKER`]. Returns 1 — the serial crossover
/// fallback — for small payloads and single-core hosts.
fn encode_worker_budget_with(host_threads: usize, requested: usize, nnz: usize) -> usize {
    requested
        .min(host_threads)
        .min(nnz / MIN_ENCODE_PAIRS_PER_WORKER)
        .max(1)
}

/// [`encode_worker_budget_with`] on the actual host parallelism — the
/// crossover heuristic shared by [`delta_varint_encode_parallel`] and the
/// engine's varint entry point.
pub fn encode_worker_budget(requested: usize, nnz: usize) -> usize {
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    encode_worker_budget_with(host, requested, nnz)
}

/// Parallel variant of [`delta_varint_encode`]: shards the sorted index
/// stream into chunks encoded concurrently — but only when the workload
/// clears the sharding crossover. [`encode_worker_budget`] caps the engaged
/// workers at the host's hardware threads and at one worker per
/// [`MIN_ENCODE_PAIRS_PER_WORKER`] pairs; below the crossover this falls
/// back to the serial encoder outright, whose output the sharded path
/// reproduces byte-for-byte anyway, so the adaptive choice is invisible on
/// the wire. [`delta_varint_encode_chunked`] is the raw always-sharded
/// primitive with an explicit shard size.
///
/// The delta encoding looks inherently serial — every gap depends on the
/// previous index — but once the pair list is sorted the predecessor of a
/// chunk's first element is simply the last index of the previous chunk, so
/// each shard **stitches its boundary gap** from a single O(1) lookup into
/// the shared sorted array and encodes independently. Concatenating the
/// per-chunk gap streams (in chunk order) and the per-chunk value streams
/// reproduces the serial byte stream exactly, so the payload is
/// **byte-identical** to [`delta_varint_encode`] for every thread count and
/// shard size.
pub fn delta_varint_encode_parallel(sparse: &SparseGradient, threads: usize) -> EncodedGradient {
    let workers = encode_worker_budget(threads, sparse.nnz());
    if workers <= 1 {
        return delta_varint_encode(sparse);
    }
    // One shard per engaged worker (never below the default 32Ki grain):
    // equal-cost shards need no finer split, and fewer shards mean fewer
    // allocations on the assembly path.
    let pairs_per_chunk = sparse.nnz().div_ceil(workers).max(1 << 15);
    delta_varint_encode_chunked(sparse, pairs_per_chunk, workers)
}

/// [`delta_varint_encode_parallel`] with an explicit number of pairs per
/// shard.
///
/// # Panics
///
/// Panics if `pairs_per_chunk` is zero.
pub fn delta_varint_encode_chunked(
    sparse: &SparseGradient,
    pairs_per_chunk: usize,
    threads: usize,
) -> EncodedGradient {
    delta_varint_encode_on(
        sparse,
        pairs_per_chunk,
        &sidco_runtime::ScopedFallback::new(threads.max(1)),
    )
}

/// [`delta_varint_encode_chunked`] on an explicit
/// [`Runtime`](sidco_runtime::Runtime).
pub fn delta_varint_encode_on(
    sparse: &SparseGradient,
    pairs_per_chunk: usize,
    runtime: &dyn sidco_runtime::Runtime,
) -> EncodedGradient {
    // Sort exactly like the serial encoder (same comparator, same stable
    // sort), so gap streams match bit-for-bit.
    let mut pairs: Vec<(u32, f32)> = sparse.iter().collect();
    pairs.sort_by_key(|&(i, _)| i);

    // One parallel job produces both sections per shard: chunk c's first gap
    // is stitched against the last index of chunk c-1 (or 0 for the first
    // chunk) — the O(1) lookup that makes the parallel stream lossless.
    let pairs_ref = &pairs;
    let parts: Vec<(Vec<u8>, Vec<u8>)> =
        crate::parallel::map_chunks_on(pairs_ref, pairs_per_chunk, runtime, |c, chunk| {
            let mut prev = if c == 0 {
                0
            } else {
                pairs_ref[c * pairs_per_chunk - 1].0
            };
            let mut gaps = Vec::with_capacity(chunk.len() * 2);
            let mut values = Vec::with_capacity(chunk.len() * 4);
            for &(i, v) in chunk {
                push_varint(&mut gaps, i - prev);
                prev = i;
                values.extend_from_slice(&v.to_le_bytes());
            }
            (gaps, values)
        });

    // Assemble: header, then every gap shard, then every value shard — both
    // in chunk (= sorted index) order, byte-identical to the serial stream.
    let mut bytes = Vec::with_capacity(sparse.nnz() * 5);
    push_varint(&mut bytes, sparse.nnz() as u32);
    for (gaps, _) in &parts {
        bytes.extend_from_slice(gaps);
    }
    for (_, values) in &parts {
        bytes.extend_from_slice(values);
    }
    EncodedGradient {
        kind: EncodingKind::DeltaVarint,
        bytes,
        dense_len: sparse.dense_len(),
        nnz: sparse.nnz(),
    }
}

/// Decodes a [`delta_varint_encode`]d payload back into a sparse gradient.
///
/// Returns `None` if the payload is malformed.
pub fn delta_varint_decode(encoded: &EncodedGradient) -> Option<SparseGradient> {
    if encoded.kind != EncodingKind::DeltaVarint {
        return None;
    }
    let bytes = &encoded.bytes;
    let mut cursor = 0usize;
    let nnz = read_varint(bytes, &mut cursor)? as usize;
    let mut indices = Vec::with_capacity(nnz);
    let mut current = 0u32;
    for j in 0..nnz {
        let gap = read_varint(bytes, &mut cursor)?;
        current = if j == 0 {
            gap
        } else {
            current.checked_add(gap)?
        };
        indices.push(current);
    }
    let mut values = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        let chunk = bytes.get(cursor..cursor + 4)?;
        values.push(f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]));
        cursor += 4;
    }
    if indices.iter().any(|&i| (i as usize) >= encoded.dense_len) {
        return None;
    }
    Some(SparseGradient::new(indices, values, encoded.dense_len))
}

/// Encodes a sparse gradient as a presence bitmap (`ceil(d/8)` bytes) followed by the
/// values in index order.
pub fn bitmap_encode(sparse: &SparseGradient) -> EncodedGradient {
    let dense_len = sparse.dense_len();
    let mut bitmap = vec![0u8; dense_len.div_ceil(8)];
    let mut pairs: Vec<(u32, f32)> = sparse.iter().collect();
    pairs.sort_by_key(|&(i, _)| i);
    for &(i, _) in &pairs {
        bitmap[(i as usize) / 8] |= 1 << (i % 8);
    }
    let mut bytes = bitmap;
    for &(_, v) in &pairs {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    EncodedGradient {
        kind: EncodingKind::Bitmap,
        bytes,
        dense_len,
        nnz: sparse.nnz(),
    }
}

/// Picks the smallest of the three encodings for this gradient.
pub fn best_encoding(sparse: &SparseGradient) -> EncodedGradient {
    let raw = raw_encode(sparse);
    let varint = delta_varint_encode(sparse);
    let bitmap = bitmap_encode(sparse);
    let mut best = raw;
    if varint.wire_bytes() < best.wire_bytes() {
        best = varint;
    }
    if bitmap.wire_bytes() < best.wire_bytes() {
        best = bitmap;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_sparse(dense_len: usize, nnz: usize, seed: u64) -> SparseGradient {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut chosen = std::collections::BTreeSet::new();
        while chosen.len() < nnz {
            chosen.insert(rng.gen_range(0..dense_len as u32));
        }
        let pairs: Vec<(u32, f32)> = chosen
            .into_iter()
            .map(|i| (i, rng.gen_range(-1.0f32..1.0)))
            .collect();
        SparseGradient::from_pairs(pairs, dense_len)
    }

    #[test]
    fn raw_encoding_matches_wire_bytes_accounting() {
        let sparse = random_sparse(10_000, 100, 1);
        let encoded = raw_encode(&sparse);
        assert_eq!(encoded.wire_bytes(), sparse.wire_bytes());
        assert_eq!(encoded.kind(), EncodingKind::RawPairs);
        assert_eq!(encoded.nnz(), 100);
        assert_eq!(encoded.dense_len(), 10_000);
        assert_eq!(encoded.payload().len(), encoded.wire_bytes());
    }

    #[test]
    fn parallel_raw_encoding_is_byte_identical() {
        for &(d, k) in &[(1_000usize, 10usize), (2_000_000, 200_000)] {
            let sparse = random_sparse(d, k, 9);
            let reference = raw_encode(&sparse);
            for threads in [1, 2, 7] {
                let parallel = raw_encode_parallel(&sparse, threads);
                assert_eq!(parallel.payload(), reference.payload());
                assert_eq!(parallel.kind(), EncodingKind::RawPairs);
                assert_eq!(parallel.nnz(), reference.nnz());
            }
        }
    }

    #[test]
    fn parallel_delta_varint_is_byte_identical_to_serial() {
        for &(d, k) in &[
            (1_000usize, 10usize),
            (100_000, 1_000),
            (2_000_000, 150_000),
        ] {
            let sparse = random_sparse(d, k, 21);
            let reference = delta_varint_encode(&sparse);
            for threads in [1usize, 2, 7] {
                // Shard sizes that split mid-stream, including one smaller
                // than the varint width transitions and one spanning all.
                for pairs in [7usize, 1 << 10, 1 << 15, usize::MAX >> 1] {
                    let parallel = delta_varint_encode_chunked(&sparse, pairs, threads);
                    assert_eq!(
                        parallel.payload(),
                        reference.payload(),
                        "d={d} k={k} threads={threads} pairs={pairs}"
                    );
                    assert_eq!(parallel.kind(), EncodingKind::DeltaVarint);
                    assert_eq!(parallel.nnz(), reference.nnz());
                    assert_eq!(parallel.dense_len(), reference.dense_len());
                }
            }
        }
    }

    #[test]
    fn parallel_delta_varint_runs_on_the_pool_runtime() {
        use sidco_runtime::{NumaTopology, WorkStealing};
        let sparse = random_sparse(500_000, 40_000, 22);
        let reference = delta_varint_encode(&sparse);
        let pool = WorkStealing::with_topology(3, NumaTopology::synthetic(2, 2));
        let encoded = delta_varint_encode_on(&sparse, 1 << 10, &pool);
        assert_eq!(encoded.payload(), reference.payload());
        // The parallel stream still roundtrips through the serial decoder.
        let decoded = delta_varint_decode(&encoded).expect("roundtrip");
        assert_eq!(decoded.to_dense().as_slice(), sparse.to_dense().as_slice());
    }

    #[test]
    fn parallel_delta_varint_handles_unsorted_and_empty_inputs() {
        // from_pairs keeps the given order; the encoder must sort first.
        let sparse =
            SparseGradient::from_pairs(vec![(90, 1.0f32), (5, -2.0), (40, 3.0), (6, 0.5)], 100);
        let reference = delta_varint_encode(&sparse);
        for threads in [1usize, 3] {
            assert_eq!(
                delta_varint_encode_chunked(&sparse, 2, threads).payload(),
                reference.payload()
            );
        }
        let empty = SparseGradient::empty(64);
        assert_eq!(
            delta_varint_encode_parallel(&empty, 4).payload(),
            delta_varint_encode(&empty).payload()
        );
    }

    #[test]
    fn encode_worker_budget_respects_the_crossover() {
        const MIN: usize = MIN_ENCODE_PAIRS_PER_WORKER;
        // Small payloads always fall back to serial, at any thread count.
        assert_eq!(encode_worker_budget_with(8, 4, 0), 1);
        assert_eq!(encode_worker_budget_with(8, 4, MIN - 1), 1);
        // The budget grows one worker per MIN pairs...
        assert_eq!(encode_worker_budget_with(8, 4, MIN), 1);
        assert_eq!(encode_worker_budget_with(8, 4, 2 * MIN), 2);
        assert_eq!(encode_worker_budget_with(8, 4, 3 * MIN), 3);
        // ...capped by the request and by the hardware.
        assert_eq!(encode_worker_budget_with(8, 4, 100 * MIN), 4);
        assert_eq!(encode_worker_budget_with(2, 4, 100 * MIN), 2);
        assert_eq!(encode_worker_budget_with(1, 4, 100 * MIN), 1);
        // A serial request never shards, whatever the payload.
        assert_eq!(encode_worker_budget_with(8, 1, 100 * MIN), 1);
    }

    #[test]
    fn adaptive_parallel_entry_is_byte_identical_on_both_sides_of_the_crossover() {
        // Below the crossover (serial fallback) and above it (sharded on
        // hosts with the cores; still byte-identical by the stitching
        // property), the public entry point must agree with the serial
        // encoder bit-for-bit.
        for &(d, k) in &[
            (10_000usize, 500usize),
            (4_000_000, 2 * MIN_ENCODE_PAIRS_PER_WORKER + 123),
        ] {
            let sparse = random_sparse(d, k, 33);
            let reference = delta_varint_encode(&sparse);
            for threads in [1usize, 2, 4] {
                assert_eq!(
                    delta_varint_encode_parallel(&sparse, threads).payload(),
                    reference.payload(),
                    "d={d} k={k} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn delta_varint_roundtrip_is_lossless() {
        for &(d, k) in &[(1_000usize, 10usize), (100_000, 1_000), (50_000, 5_000)] {
            let sparse = random_sparse(d, k, 2);
            let encoded = delta_varint_encode(&sparse);
            let decoded = delta_varint_decode(&encoded).expect("roundtrip");
            assert_eq!(decoded.dense_len(), sparse.dense_len());
            // Values at each index match (order inside the struct may differ).
            assert_eq!(decoded.to_dense().as_slice(), sparse.to_dense().as_slice());
        }
    }

    #[test]
    fn delta_varint_is_smaller_than_raw_for_typical_ratios() {
        // At δ = 0.01 the average index gap is 100 < 2^14, so gaps fit in ≤ 2 bytes.
        let sparse = random_sparse(1_000_000, 10_000, 3);
        let raw = raw_encode(&sparse).wire_bytes();
        let varint = delta_varint_encode(&sparse).wire_bytes();
        assert!(
            (varint as f64) < 0.8 * raw as f64,
            "varint {varint} should be well below raw {raw}"
        );
    }

    #[test]
    fn bitmap_wins_at_high_density() {
        let sparse = random_sparse(10_000, 2_500, 4); // 25% density
        let raw = raw_encode(&sparse).wire_bytes();
        let bitmap = bitmap_encode(&sparse).wire_bytes();
        assert!(bitmap < raw);
        assert_eq!(best_encoding(&sparse).kind(), EncodingKind::Bitmap);
    }

    #[test]
    fn varint_or_raw_wins_at_low_density() {
        let sparse = random_sparse(1_000_000, 100, 5); // 0.01% density
        let best = best_encoding(&sparse);
        assert_ne!(best.kind(), EncodingKind::Bitmap);
        assert!(best.wire_bytes() <= raw_encode(&sparse).wire_bytes());
    }

    #[test]
    fn decode_rejects_wrong_kind_and_truncated_payloads() {
        let sparse = random_sparse(1_000, 10, 6);
        assert!(delta_varint_decode(&raw_encode(&sparse)).is_none());
        let mut encoded = delta_varint_encode(&sparse);
        encoded.bytes.truncate(encoded.bytes.len() / 2);
        assert!(delta_varint_decode(&encoded).is_none());
    }

    #[test]
    fn empty_gradient_encodings() {
        let sparse = SparseGradient::empty(100);
        assert_eq!(raw_encode(&sparse).wire_bytes(), 0);
        let varint = delta_varint_encode(&sparse);
        assert_eq!(delta_varint_decode(&varint).unwrap().nnz(), 0);
        assert_eq!(bitmap_encode(&sparse).wire_bytes(), 13);
    }
}
