//! Exact Top-k selection.
//!
//! Three interchangeable algorithms are provided because the paper's cost argument
//! hinges on how expensive exact selection is relative to a linear threshold scan:
//!
//! * [`TopKAlgorithm::FullSort`] — `O(d log d)`, the naive baseline;
//! * [`TopKAlgorithm::Heap`] — `O(d log k)`, the textbook CPU implementation the
//!   paper cites for Top-k;
//! * [`TopKAlgorithm::QuickSelect`] — expected `O(d)` selection of the k-th largest
//!   magnitude followed by a threshold scan, the fastest exact CPU variant and the
//!   closest analogue of PyTorch's radix select.

use crate::sparse::SparseGradient;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Which exact Top-k algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TopKAlgorithm {
    /// Sort all magnitudes descending and take the first `k`.
    FullSort,
    /// Maintain a min-heap of the current best `k` magnitudes.
    Heap,
    /// Quickselect the k-th largest magnitude, then scan. The default.
    #[default]
    QuickSelect,
}

impl TopKAlgorithm {
    /// All algorithms, for benchmark sweeps.
    pub const ALL: [TopKAlgorithm; 3] = [
        TopKAlgorithm::FullSort,
        TopKAlgorithm::Heap,
        TopKAlgorithm::QuickSelect,
    ];
}

/// Selects the `k` elements of `grad` with the largest absolute value.
///
/// Ties at the selection boundary are broken arbitrarily but exactly `min(k, d)`
/// elements are always returned. `k = 0` returns an empty sparse gradient.
///
/// # Example
///
/// ```
/// use sidco_tensor::topk::{top_k, TopKAlgorithm};
///
/// let grad = [0.1f32, -5.0, 0.3, 2.0];
/// let s = top_k(&grad, 2, TopKAlgorithm::QuickSelect);
/// let mut idx: Vec<u32> = s.indices().to_vec();
/// idx.sort();
/// assert_eq!(idx, vec![1, 3]);
/// ```
pub fn top_k(grad: &[f32], k: usize, algorithm: TopKAlgorithm) -> SparseGradient {
    let k = k.min(grad.len());
    if k == 0 {
        return SparseGradient::empty(grad.len());
    }
    if k == grad.len() {
        let indices: Vec<u32> = (0..grad.len() as u32).collect();
        return SparseGradient::new(indices, grad.to_vec(), grad.len());
    }
    match algorithm {
        TopKAlgorithm::FullSort => top_k_full_sort(grad, k),
        TopKAlgorithm::Heap => top_k_heap(grad, k),
        TopKAlgorithm::QuickSelect => top_k_quickselect(grad, k),
    }
}

/// Returns the magnitude of the k-th largest element (the exact Top-k threshold):
/// exactly `k` elements have `|g| >= kth_largest_magnitude(g, k)` up to ties.
///
/// Returns 0 when `k == 0` or the gradient is empty; if `k >= d` returns the
/// smallest magnitude.
pub fn kth_largest_magnitude(grad: &[f32], k: usize) -> f32 {
    if grad.is_empty() || k == 0 {
        return 0.0;
    }
    let k = k.min(grad.len());
    let mut mags: Vec<f32> = grad.iter().map(|x| x.abs()).collect();
    let idx = k - 1;
    mags.select_nth_unstable_by(idx, |a, b| b.partial_cmp(a).unwrap_or(Ordering::Equal));
    mags[idx]
}

fn top_k_full_sort(grad: &[f32], k: usize) -> SparseGradient {
    let mut order: Vec<u32> = (0..grad.len() as u32).collect();
    order.sort_by(|&a, &b| {
        grad[b as usize]
            .abs()
            .partial_cmp(&grad[a as usize].abs())
            .unwrap_or(Ordering::Equal)
    });
    order.truncate(k);
    build_sparse(grad, order)
}

/// Entry of the min-heap used by the heap-based selector. Ordered by magnitude so
/// the heap root is the smallest of the current best `k`.
#[derive(PartialEq)]
struct HeapEntry {
    magnitude: f32,
    index: u32,
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want the smallest magnitude
        // at the root so it can be evicted.
        other
            .magnitude
            .partial_cmp(&self.magnitude)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.index.cmp(&self.index))
    }
}

fn top_k_heap(grad: &[f32], k: usize) -> SparseGradient {
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(k + 1);
    for (i, &g) in grad.iter().enumerate() {
        let magnitude = g.abs();
        if heap.len() < k {
            heap.push(HeapEntry {
                magnitude,
                index: i as u32,
            });
        } else if let Some(min) = heap.peek() {
            if magnitude > min.magnitude {
                heap.pop();
                heap.push(HeapEntry {
                    magnitude,
                    index: i as u32,
                });
            }
        }
    }
    let order: Vec<u32> = heap.into_iter().map(|e| e.index).collect();
    build_sparse(grad, order)
}

fn top_k_quickselect(grad: &[f32], k: usize) -> SparseGradient {
    let threshold = kth_largest_magnitude(grad, k);
    // Collect strictly-above first, then fill with ties at the threshold until we
    // have exactly k elements.
    let mut indices: Vec<u32> = Vec::with_capacity(k);
    for (i, &g) in grad.iter().enumerate() {
        if g.abs() > threshold {
            indices.push(i as u32);
        }
    }
    if indices.len() < k {
        for (i, &g) in grad.iter().enumerate() {
            if g.abs() == threshold {
                indices.push(i as u32);
                if indices.len() == k {
                    break;
                }
            }
        }
    }
    indices.truncate(k);
    build_sparse(grad, indices)
}

fn build_sparse(grad: &[f32], indices: Vec<u32>) -> SparseGradient {
    let values: Vec<f32> = indices.iter().map(|&i| grad[i as usize]).collect();
    SparseGradient::new(indices, values, grad.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn magnitude_set(s: &SparseGradient) -> Vec<f32> {
        let mut mags: Vec<f32> = s.values().iter().map(|v| v.abs()).collect();
        mags.sort_by(|a, b| b.partial_cmp(a).unwrap());
        mags
    }

    #[test]
    fn all_algorithms_agree_on_magnitudes() {
        let mut rng = SmallRng::seed_from_u64(101);
        let grad: Vec<f32> = (0..5_000).map(|_| rng.gen_range(-1.0..1.0)).collect();
        for &k in &[1usize, 7, 50, 499, 2_500] {
            let reference = magnitude_set(&top_k(&grad, k, TopKAlgorithm::FullSort));
            for alg in [TopKAlgorithm::Heap, TopKAlgorithm::QuickSelect] {
                let result = top_k(&grad, k, alg);
                assert_eq!(result.nnz(), k, "{alg:?} returned wrong count for k={k}");
                let mags = magnitude_set(&result);
                for (a, b) in reference.iter().zip(mags.iter()) {
                    assert!((a - b).abs() < 1e-12, "{alg:?} differs at k={k}");
                }
            }
        }
    }

    #[test]
    fn edge_cases() {
        let grad = [1.0f32, -2.0, 3.0];
        for alg in TopKAlgorithm::ALL {
            assert_eq!(top_k(&grad, 0, alg).nnz(), 0);
            assert_eq!(top_k(&grad, 3, alg).nnz(), 3);
            assert_eq!(top_k(&grad, 10, alg).nnz(), 3);
            assert_eq!(top_k(&[], 5, alg).nnz(), 0);
        }
    }

    #[test]
    fn values_match_original_positions() {
        let grad = [0.5f32, -3.0, 0.1, 2.0, -0.7];
        let s = top_k(&grad, 2, TopKAlgorithm::QuickSelect);
        for (i, v) in s.iter() {
            assert_eq!(grad[i as usize], v);
        }
        let mut idx: Vec<u32> = s.indices().to_vec();
        idx.sort();
        assert_eq!(idx, vec![1, 3]);
    }

    #[test]
    fn kth_largest_magnitude_matches_sorted_order() {
        let mut rng = SmallRng::seed_from_u64(102);
        let grad: Vec<f32> = (0..2_000).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let mut sorted: Vec<f32> = grad.iter().map(|x| x.abs()).collect();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        for &k in &[1usize, 13, 100, 1999] {
            assert_eq!(kth_largest_magnitude(&grad, k), sorted[k - 1]);
        }
        assert_eq!(kth_largest_magnitude(&grad, 0), 0.0);
        assert_eq!(kth_largest_magnitude(&[], 5), 0.0);
        assert_eq!(kth_largest_magnitude(&grad, 10_000), sorted[1999]);
    }

    #[test]
    fn handles_ties_exactly() {
        let grad = [1.0f32; 10];
        for alg in TopKAlgorithm::ALL {
            let s = top_k(&grad, 4, alg);
            assert_eq!(s.nnz(), 4, "{alg:?} must return exactly k elements on ties");
        }
    }

    #[test]
    fn default_algorithm_is_quickselect() {
        assert_eq!(TopKAlgorithm::default(), TopKAlgorithm::QuickSelect);
    }
}
