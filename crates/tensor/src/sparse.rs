//! Sparse gradient representation — the wire format produced by every compressor.

use crate::dense::GradientVector;

/// A sparsified gradient: the selected indices and their values, plus the length of
/// the original dense vector.
///
/// This mirrors what an all-gather of compressed gradients actually transmits:
/// `nnz` `(u32 index, f32 value)` pairs, i.e. 8 bytes per retained element.
///
/// # Example
///
/// ```
/// use sidco_tensor::SparseGradient;
///
/// let s = SparseGradient::from_pairs(vec![(1, 0.5), (3, -0.25)], 4);
/// assert_eq!(s.nnz(), 2);
/// assert_eq!(s.to_dense().as_slice(), &[0.0, 0.5, 0.0, -0.25]);
/// assert_eq!(s.wire_bytes(), 2 * 8);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SparseGradient {
    indices: Vec<u32>,
    values: Vec<f32>,
    dense_len: usize,
}

impl SparseGradient {
    /// Creates an empty sparse gradient for a dense vector of length `dense_len`.
    pub fn empty(dense_len: usize) -> Self {
        Self {
            indices: Vec::new(),
            values: Vec::new(),
            dense_len,
        }
    }

    /// Creates a sparse gradient from parallel index/value buffers.
    ///
    /// # Panics
    ///
    /// Panics if the buffers have different lengths or any index is out of range.
    pub fn new(indices: Vec<u32>, values: Vec<f32>, dense_len: usize) -> Self {
        assert_eq!(
            indices.len(),
            values.len(),
            "index and value buffers must have equal lengths"
        );
        assert!(
            indices.iter().all(|&i| (i as usize) < dense_len),
            "sparse index out of range of the dense length {dense_len}"
        );
        Self {
            indices,
            values,
            dense_len,
        }
    }

    /// Creates a sparse gradient from `(index, value)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn from_pairs(pairs: Vec<(u32, f32)>, dense_len: usize) -> Self {
        let (indices, values): (Vec<u32>, Vec<f32>) = pairs.into_iter().unzip();
        Self::new(indices, values, dense_len)
    }

    /// Number of retained (non-zero) elements.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Length of the original dense gradient.
    pub fn dense_len(&self) -> usize {
        self.dense_len
    }

    /// Achieved compression ratio `k̂ / d` (0 for an empty dense vector).
    pub fn achieved_ratio(&self) -> f64 {
        if self.dense_len == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.dense_len as f64
        }
    }

    /// The selected indices.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// The selected values.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Iterator over `(index, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f32)> + '_ {
        self.indices
            .iter()
            .copied()
            .zip(self.values.iter().copied())
    }

    /// Number of bytes this gradient occupies on the wire
    /// (4-byte index + 4-byte value per retained element).
    pub fn wire_bytes(&self) -> usize {
        self.nnz() * (std::mem::size_of::<u32>() + std::mem::size_of::<f32>())
    }

    /// Scatters the sparse values into a fresh dense vector.
    pub fn to_dense(&self) -> GradientVector {
        let mut dense = GradientVector::zeros(self.dense_len);
        self.scatter_into(&mut dense);
        dense
    }

    /// Adds the sparse values into an existing dense accumulator
    /// (`acc[i] += value` for every retained element).
    ///
    /// # Panics
    ///
    /// Panics if the accumulator length differs from [`dense_len`](Self::dense_len).
    pub fn add_into(&self, acc: &mut GradientVector) {
        assert_eq!(
            acc.len(),
            self.dense_len,
            "accumulator length must match the dense length"
        );
        let slice = acc.as_mut_slice();
        for (&i, &v) in self.indices.iter().zip(self.values.iter()) {
            slice[i as usize] += v;
        }
    }

    /// Writes the sparse values into an existing dense vector, overwriting only the
    /// retained positions (other positions are left untouched).
    ///
    /// # Panics
    ///
    /// Panics if the target length differs from [`dense_len`](Self::dense_len).
    pub fn scatter_into(&self, target: &mut GradientVector) {
        assert_eq!(
            target.len(),
            self.dense_len,
            "target length must match the dense length"
        );
        let slice = target.as_mut_slice();
        for (&i, &v) in self.indices.iter().zip(self.values.iter()) {
            slice[i as usize] = v;
        }
    }

    /// The sparsification residual `g - ĝ`: the dense gradient with the retained
    /// positions zeroed out. This is what the error-feedback mechanism carries to the
    /// next iteration.
    ///
    /// # Panics
    ///
    /// Panics if `original` has a different length.
    pub fn residual(&self, original: &GradientVector) -> GradientVector {
        assert_eq!(
            original.len(),
            self.dense_len,
            "original length must match the dense length"
        );
        let mut residual = original.clone();
        let slice = residual.as_mut_slice();
        for &i in &self.indices {
            slice[i as usize] = 0.0;
        }
        residual
    }

    /// L2 norm of the retained values.
    pub fn l2_norm(&self) -> f64 {
        self.values
            .iter()
            .map(|&v| (v as f64) * (v as f64))
            .sum::<f64>()
            .sqrt()
    }
}

impl FromIterator<(u32, f32)> for SparseGradient {
    /// Collects `(index, value)` pairs; the dense length is set to one past the
    /// largest index (use [`SparseGradient::from_pairs`] to control it explicitly).
    fn from_iter<I: IntoIterator<Item = (u32, f32)>>(iter: I) -> Self {
        let pairs: Vec<(u32, f32)> = iter.into_iter().collect();
        let dense_len = pairs
            .iter()
            .map(|&(i, _)| i as usize + 1)
            .max()
            .unwrap_or(0);
        Self::from_pairs(pairs, dense_len)
    }
}

/// Aggregates (averages) sparse gradients from `n` workers into one dense gradient,
/// replicating what an all-gather followed by a local sum does in the real system.
///
/// # Panics
///
/// Panics if the sparse gradients disagree on the dense length or the slice is empty.
pub fn aggregate_mean(sparse_grads: &[SparseGradient]) -> GradientVector {
    assert!(
        !sparse_grads.is_empty(),
        "aggregation requires at least one gradient"
    );
    let dense_len = sparse_grads[0].dense_len();
    assert!(
        sparse_grads.iter().all(|s| s.dense_len() == dense_len),
        "all sparse gradients must share the same dense length"
    );
    let mut acc = GradientVector::zeros(dense_len);
    for s in sparse_grads {
        s.add_into(&mut acc);
    }
    acc.scale(1.0 / sparse_grads.len() as f32);
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let s = SparseGradient::new(vec![0, 2], vec![1.0, -1.0], 3);
        assert_eq!(s.nnz(), 2);
        assert_eq!(s.dense_len(), 3);
        assert_eq!(s.indices(), &[0, 2]);
        assert_eq!(s.values(), &[1.0, -1.0]);
        assert!((s.achieved_ratio() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.wire_bytes(), 16);
        let pairs: Vec<(u32, f32)> = s.iter().collect();
        assert_eq!(pairs, vec![(0, 1.0), (2, -1.0)]);
        assert_eq!(SparseGradient::empty(5).nnz(), 0);
        assert_eq!(SparseGradient::empty(0).achieved_ratio(), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn mismatched_buffers_panic() {
        SparseGradient::new(vec![0], vec![1.0, 2.0], 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        SparseGradient::new(vec![5], vec![1.0], 3);
    }

    #[test]
    fn dense_roundtrip_and_residual() {
        let original = GradientVector::from_vec(vec![0.5, -0.1, 0.9, 0.0]);
        let s = SparseGradient::from_pairs(vec![(0, 0.5), (2, 0.9)], 4);
        assert_eq!(s.to_dense().as_slice(), &[0.5, 0.0, 0.9, 0.0]);
        let residual = s.residual(&original);
        assert_eq!(residual.as_slice(), &[0.0, -0.1, 0.0, 0.0]);
        // residual + sparse == original
        let mut recon = s.to_dense();
        recon.add_assign(&residual);
        assert_eq!(recon.as_slice(), original.as_slice());
    }

    #[test]
    fn add_into_accumulates() {
        let mut acc = GradientVector::from_vec(vec![1.0, 1.0, 1.0]);
        let s = SparseGradient::from_pairs(vec![(1, 2.0)], 3);
        s.add_into(&mut acc);
        assert_eq!(acc.as_slice(), &[1.0, 3.0, 1.0]);
    }

    #[test]
    fn from_iterator_infers_len() {
        let s: SparseGradient = vec![(4u32, 1.0f32), (1, 2.0)].into_iter().collect();
        assert_eq!(s.dense_len(), 5);
        assert_eq!(s.nnz(), 2);
        let empty: SparseGradient = Vec::<(u32, f32)>::new().into_iter().collect();
        assert_eq!(empty.dense_len(), 0);
    }

    #[test]
    fn aggregate_mean_of_workers() {
        let a = SparseGradient::from_pairs(vec![(0, 2.0), (1, 4.0)], 3);
        let b = SparseGradient::from_pairs(vec![(1, 2.0), (2, 6.0)], 3);
        let mean = aggregate_mean(&[a, b]);
        assert_eq!(mean.as_slice(), &[1.0, 3.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "at least one gradient")]
    fn aggregate_empty_panics() {
        aggregate_mean(&[]);
    }

    #[test]
    fn l2_norm_of_values() {
        let s = SparseGradient::from_pairs(vec![(0, 3.0), (1, 4.0)], 2);
        assert!((s.l2_norm() - 5.0).abs() < 1e-9);
    }
}
