//! Random sub-sampling of gradient vectors, the expensive primitive inside DGC.

use rand::Rng;

/// Uniformly samples `sample_size` elements (with replacement) from `grad` and
/// returns their values.
///
/// With-replacement sampling is what the DGC reference implementation does
/// (`torch.randint` into the flattened gradient); it is cheaper than reservoir
/// sampling and statistically indistinguishable for the percentile estimate when
/// `sample_size ≪ d`.
///
/// Returns an empty vector if `grad` is empty or `sample_size` is zero.
pub fn sample_values<R: Rng + ?Sized>(grad: &[f32], sample_size: usize, rng: &mut R) -> Vec<f32> {
    if grad.is_empty() || sample_size == 0 {
        return Vec::new();
    }
    (0..sample_size)
        .map(|_| grad[rng.gen_range(0..grad.len())])
        .collect()
}

/// Uniformly samples a fraction `fraction` of the gradient (with replacement),
/// clamped to at least `min_elements` values so tiny layers still produce a usable
/// sample (DGC uses 1% with a floor).
pub fn sample_fraction<R: Rng + ?Sized>(
    grad: &[f32],
    fraction: f64,
    min_elements: usize,
    rng: &mut R,
) -> Vec<f32> {
    if grad.is_empty() {
        return Vec::new();
    }
    let target = ((grad.len() as f64 * fraction).ceil() as usize)
        .max(min_elements)
        .min(grad.len());
    sample_values(grad, target, rng)
}

/// Selects `k` random element indices without replacement (Random-k baseline).
/// Uses Floyd's algorithm so the cost is `O(k)` expected regardless of `d`.
pub fn random_indices<R: Rng + ?Sized>(len: usize, k: usize, rng: &mut R) -> Vec<u32> {
    let k = k.min(len);
    if k == 0 {
        return Vec::new();
    }
    let mut chosen = std::collections::HashSet::with_capacity(k);
    let mut out = Vec::with_capacity(k);
    for j in (len - k)..len {
        let t = rng.gen_range(0..=j);
        let pick = if chosen.contains(&(t as u32)) {
            j as u32
        } else {
            t as u32
        };
        chosen.insert(pick);
        out.push(pick);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn sample_values_size_and_membership() {
        let grad = [1.0f32, 2.0, 3.0];
        let mut rng = SmallRng::seed_from_u64(1);
        let s = sample_values(&grad, 100, &mut rng);
        assert_eq!(s.len(), 100);
        assert!(s.iter().all(|v| grad.contains(v)));
        assert!(sample_values(&[], 10, &mut rng).is_empty());
        assert!(sample_values(&grad, 0, &mut rng).is_empty());
    }

    #[test]
    fn sample_fraction_respects_floor_and_cap() {
        let grad = vec![0.5f32; 1000];
        let mut rng = SmallRng::seed_from_u64(2);
        assert_eq!(sample_fraction(&grad, 0.01, 1, &mut rng).len(), 10);
        assert_eq!(sample_fraction(&grad, 0.0001, 64, &mut rng).len(), 64);
        assert_eq!(sample_fraction(&grad, 10.0, 1, &mut rng).len(), 1000);
        assert!(sample_fraction(&[], 0.5, 8, &mut rng).is_empty());
    }

    #[test]
    fn random_indices_unique_and_in_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        for &(len, k) in &[(100usize, 10usize), (50, 50), (10, 0), (5, 20)] {
            let idx = random_indices(len, k, &mut rng);
            assert_eq!(idx.len(), k.min(len));
            let unique: std::collections::HashSet<_> = idx.iter().collect();
            assert_eq!(unique.len(), idx.len(), "indices must be unique");
            assert!(idx.iter().all(|&i| (i as usize) < len));
        }
    }

    #[test]
    fn random_indices_cover_range_over_many_draws() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            for i in random_indices(10, 3, &mut rng) {
                seen.insert(i);
            }
        }
        assert_eq!(seen.len(), 10, "all positions should eventually be sampled");
    }

    #[test]
    fn sample_percentile_estimates_true_percentile() {
        // The DGC use-case: the percentile of a 1% sample approximates the
        // percentile of the full vector.
        let mut rng = SmallRng::seed_from_u64(5);
        let grad: Vec<f32> = (0..100_000).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let sample = sample_fraction(&grad, 0.01, 64, &mut rng);
        let mut abs_sample: Vec<f32> = sample.iter().map(|x| x.abs()).collect();
        abs_sample.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let approx = abs_sample[(abs_sample.len() as f64 * 0.99) as usize];
        let mut abs_full: Vec<f32> = grad.iter().map(|x| x.abs()).collect();
        abs_full.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let exact = abs_full[(abs_full.len() as f64 * 0.99) as usize];
        assert!((approx - exact).abs() / exact < 0.05);
    }
}
