//! Gradient compressibility analysis (Definition 1 / Property 1 / Figure 7 of the
//! paper).
//!
//! A vector is *compressible* when its sorted magnitudes decay like a power law
//! `g̃_j ≤ c · j^{-p}` with `p > 1/2`; the best-k approximation error then decays as
//! `σ_k ≤ c₂ · k^{1/2 - p}`. This module estimates the decay exponent, produces the
//! sorted-magnitude and σ_k series plotted in Figure 7, and provides a boolean
//! compressibility check used by the synthetic gradient generator's self-tests.

/// The sorted-magnitude profile of a gradient together with power-law diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressibilityReport {
    /// Sorted absolute values, descending (`g̃`).
    pub sorted_magnitudes: Vec<f32>,
    /// Estimated power-law decay exponent `p` from a log–log least-squares fit.
    pub decay_exponent: f64,
    /// Coefficient `c₁` of the fitted power law (value at index 1).
    pub decay_coefficient: f64,
    /// R² of the log–log fit (1 means a perfect power law).
    pub fit_r2: f64,
}

impl CompressibilityReport {
    /// Whether the gradient satisfies Definition 1's compressibility condition
    /// (`p > 1/2` with a reasonable fit).
    pub fn is_compressible(&self) -> bool {
        self.decay_exponent > 0.5 && self.fit_r2 > 0.5
    }

    /// The relative sparsification error `σ_k(g) / ||g||₂` for the given `k`
    /// (equation 2 of the paper, normalised so different iterations are comparable).
    pub fn relative_sparsification_error(&self, k: usize) -> f64 {
        let total: f64 = self
            .sorted_magnitudes
            .iter()
            .map(|&x| (x as f64) * (x as f64))
            .sum();
        if total == 0.0 {
            return 0.0;
        }
        let tail: f64 = self
            .sorted_magnitudes
            .iter()
            .skip(k)
            .map(|&x| (x as f64) * (x as f64))
            .sum();
        (tail / total).sqrt()
    }

    /// The σ_k series for a set of `k` values (the Figure 7b curve).
    pub fn sparsification_error_series(&self, ks: &[usize]) -> Vec<(usize, f64)> {
        ks.iter()
            .map(|&k| (k, self.relative_sparsification_error(k)))
            .collect()
    }
}

/// Analyses the compressibility of a gradient vector.
///
/// The decay exponent is estimated by ordinary least squares on
/// `ln g̃_j ≈ ln c₁ - p ln j`, restricted to the largest `fit_fraction` of the sorted
/// entries (the paper fits the head of the curve, e.g. the first 10⁵ of 2.7·10⁵
/// entries) and skipping exact zeros.
///
/// # Panics
///
/// Panics if `fit_fraction` is not in `(0, 1]`.
pub fn analyze(grad: &[f32], fit_fraction: f64) -> CompressibilityReport {
    assert!(
        fit_fraction > 0.0 && fit_fraction <= 1.0,
        "fit_fraction must lie in (0, 1], got {fit_fraction}"
    );
    let mut sorted: Vec<f32> = grad.iter().map(|x| x.abs()).collect();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));

    let fit_len = ((sorted.len() as f64 * fit_fraction).ceil() as usize)
        .max(2)
        .min(sorted.len());
    // Log–log least squares over the non-zero head.
    let mut n = 0.0f64;
    let mut sx = 0.0f64;
    let mut sy = 0.0f64;
    let mut sxx = 0.0f64;
    let mut sxy = 0.0f64;
    let mut syy = 0.0f64;
    for (j, &g) in sorted.iter().take(fit_len).enumerate() {
        if g <= 0.0 {
            break;
        }
        let x = ((j + 1) as f64).ln();
        let y = (g as f64).ln();
        n += 1.0;
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
        syy += y * y;
    }
    if n < 2.0 {
        return CompressibilityReport {
            sorted_magnitudes: sorted,
            decay_exponent: 0.0,
            decay_coefficient: 0.0,
            fit_r2: 0.0,
        };
    }
    let denom = n * sxx - sx * sx;
    let slope = if denom.abs() < 1e-30 {
        0.0
    } else {
        (n * sxy - sx * sy) / denom
    };
    let intercept = (sy - slope * sx) / n;
    // R² of the regression.
    let var_y = syy - sy * sy / n;
    let ss_res = syy - intercept * sy - slope * sxy;
    let r2 = if var_y > 0.0 {
        (1.0 - ss_res / var_y).clamp(0.0, 1.0)
    } else {
        0.0
    };
    CompressibilityReport {
        sorted_magnitudes: sorted,
        decay_exponent: -slope,
        decay_coefficient: intercept.exp(),
        fit_r2: r2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn power_law_vector(n: usize, p: f64, seed: u64) -> Vec<f32> {
        // Magnitudes j^{-p} with random signs and random positions.
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut values: Vec<f32> = (1..=n)
            .map(|j| {
                let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                (sign * (j as f64).powf(-p)) as f32
            })
            .collect();
        // Shuffle positions: compressibility is about the sorted profile only.
        for i in (1..values.len()).rev() {
            let j = rng.gen_range(0..=i);
            values.swap(i, j);
        }
        values
    }

    #[test]
    fn recovers_decay_exponent_of_synthetic_power_law() {
        for &p in &[0.7f64, 1.0, 1.5] {
            let grad = power_law_vector(20_000, p, 7);
            let report = analyze(&grad, 1.0);
            assert!(
                (report.decay_exponent - p).abs() < 0.05,
                "expected p≈{p}, got {}",
                report.decay_exponent
            );
            assert!(report.fit_r2 > 0.99);
            assert!(report.is_compressible());
        }
    }

    #[test]
    fn uniform_noise_is_not_compressible() {
        let mut rng = SmallRng::seed_from_u64(8);
        let grad: Vec<f32> = (0..20_000).map(|_| rng.gen_range(0.5f32..1.0)).collect();
        let report = analyze(&grad, 1.0);
        assert!(
            !report.is_compressible(),
            "flat spectrum reported as compressible: p={}, r2={}",
            report.decay_exponent,
            report.fit_r2
        );
    }

    #[test]
    fn sparsification_error_decreases_with_k() {
        let grad = power_law_vector(10_000, 0.9, 9);
        let report = analyze(&grad, 1.0);
        let series = report.sparsification_error_series(&[10, 100, 1_000, 9_999]);
        for w in series.windows(2) {
            assert!(w[1].1 <= w[0].1, "σ_k must be non-increasing in k");
        }
        assert!(series.last().unwrap().1 < 0.01);
        assert!((report.relative_sparsification_error(0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sorted_magnitudes_are_descending() {
        let grad = power_law_vector(1_000, 0.8, 10);
        let report = analyze(&grad, 0.5);
        for w in report.sorted_magnitudes.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert_eq!(report.sorted_magnitudes.len(), 1_000);
    }

    #[test]
    fn handles_degenerate_inputs() {
        let report = analyze(&[0.0f32; 100], 1.0);
        assert_eq!(report.decay_exponent, 0.0);
        assert!(!report.is_compressible());
        assert_eq!(report.relative_sparsification_error(10), 0.0);
        let report = analyze(&[1.0f32], 1.0);
        assert!(!report.is_compressible());
    }

    #[test]
    #[should_panic(expected = "fit_fraction")]
    fn rejects_bad_fit_fraction() {
        analyze(&[1.0f32, 2.0], 0.0);
    }
}
