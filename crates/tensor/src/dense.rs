//! Dense gradient vectors and BLAS-1 style operations.

use std::ops::{Index, IndexMut};

/// An owned dense gradient vector (`f32`, matching the wire precision of the
/// frameworks the paper targets).
///
/// The type is a thin wrapper over `Vec<f32>` that adds the reductions and update
/// operations the distributed-SGD simulator needs; it intentionally stays `f32`
/// end-to-end while all statistical accumulation happens in `f64` inside
/// `sidco-stats`.
///
/// # Example
///
/// ```
/// use sidco_tensor::GradientVector;
///
/// let mut g = GradientVector::zeros(4);
/// g.as_mut_slice().copy_from_slice(&[1.0, -2.0, 3.0, 0.0]);
/// assert_eq!(g.len(), 4);
/// assert!((g.l2_norm() - 14.0f64.sqrt()).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GradientVector {
    data: Vec<f32>,
}

impl GradientVector {
    /// Creates a zero-filled gradient of length `len`.
    pub fn zeros(len: usize) -> Self {
        Self {
            data: vec![0.0; len],
        }
    }

    /// Wraps an existing buffer without copying.
    pub fn from_vec(data: Vec<f32>) -> Self {
        Self { data }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the vector and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Euclidean norm, accumulated in `f64`.
    pub fn l2_norm(&self) -> f64 {
        self.data
            .iter()
            .map(|&x| (x as f64) * (x as f64))
            .sum::<f64>()
            .sqrt()
    }

    /// Sum of absolute values, accumulated in `f64`.
    pub fn l1_norm(&self) -> f64 {
        self.data.iter().map(|&x| x.abs() as f64).sum()
    }

    /// Maximum absolute value (0 for an empty vector).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Number of exactly-zero elements.
    pub fn count_zeros(&self) -> usize {
        self.data.iter().filter(|&&x| x == 0.0).count()
    }

    /// Scales every element by `factor`.
    pub fn scale(&mut self, factor: f32) {
        self.data.iter_mut().for_each(|x| *x *= factor);
    }

    /// `self += alpha * other`, element-wise.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn axpy(&mut self, alpha: f32, other: &GradientVector) {
        assert_eq!(
            self.len(),
            other.len(),
            "axpy requires equal lengths ({} vs {})",
            self.len(),
            other.len()
        );
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// `self += other`, element-wise.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn add_assign(&mut self, other: &GradientVector) {
        self.axpy(1.0, other);
    }

    /// Element-wise average of several gradients (the aggregation step of
    /// synchronous SGD).
    ///
    /// # Panics
    ///
    /// Panics if `grads` is empty or the lengths differ.
    pub fn mean_of(grads: &[GradientVector]) -> GradientVector {
        assert!(!grads.is_empty(), "mean_of requires at least one gradient");
        let len = grads[0].len();
        let mut out = GradientVector::zeros(len);
        for g in grads {
            out.add_assign(g);
        }
        out.scale(1.0 / grads.len() as f32);
        out
    }

    /// Returns a clipped copy whose L2 norm does not exceed `max_norm`
    /// (gradient clipping as used by the RNN benchmarks in Table 1).
    pub fn clipped_by_norm(&self, max_norm: f64) -> GradientVector {
        let norm = self.l2_norm();
        let mut out = self.clone();
        if norm > max_norm && norm > 0.0 {
            out.scale((max_norm / norm) as f32);
        }
        out
    }

    /// Euclidean distance to another vector.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn l2_distance(&self, other: &GradientVector) -> f64 {
        assert_eq!(
            self.len(),
            other.len(),
            "l2_distance requires equal lengths"
        );
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| {
                let d = (a - b) as f64;
                d * d
            })
            .sum::<f64>()
            .sqrt()
    }
}

impl From<Vec<f32>> for GradientVector {
    fn from(data: Vec<f32>) -> Self {
        Self::from_vec(data)
    }
}

impl AsRef<[f32]> for GradientVector {
    fn as_ref(&self) -> &[f32] {
        &self.data
    }
}

impl Index<usize> for GradientVector {
    type Output = f32;

    fn index(&self, index: usize) -> &f32 {
        &self.data[index]
    }
}

impl IndexMut<usize> for GradientVector {
    fn index_mut(&mut self, index: usize) -> &mut f32 {
        &mut self.data[index]
    }
}

impl FromIterator<f32> for GradientVector {
    fn from_iter<I: IntoIterator<Item = f32>>(iter: I) -> Self {
        Self {
            data: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_views() {
        let g = GradientVector::zeros(3);
        assert_eq!(g.len(), 3);
        assert!(!g.is_empty());
        assert_eq!(g.as_slice(), &[0.0, 0.0, 0.0]);
        let g = GradientVector::from_vec(vec![1.0, 2.0]);
        assert_eq!(g.into_vec(), vec![1.0, 2.0]);
        let g: GradientVector = vec![1.0f32, 2.0].into();
        assert_eq!(g[1], 2.0);
        let g: GradientVector = [3.0f32, 4.0].into_iter().collect();
        assert_eq!(g.as_ref(), &[3.0, 4.0]);
    }

    #[test]
    fn norms() {
        let g = GradientVector::from_vec(vec![3.0, -4.0]);
        assert!((g.l2_norm() - 5.0).abs() < 1e-9);
        assert!((g.l1_norm() - 7.0).abs() < 1e-9);
        assert_eq!(g.max_abs(), 4.0);
        assert_eq!(GradientVector::zeros(0).max_abs(), 0.0);
        assert_eq!(
            GradientVector::from_vec(vec![0.0, 1.0, 0.0]).count_zeros(),
            2
        );
    }

    #[test]
    fn scale_axpy_add() {
        let mut a = GradientVector::from_vec(vec![1.0, 2.0]);
        let b = GradientVector::from_vec(vec![10.0, 20.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[6.0, 12.0]);
        a.scale(2.0);
        assert_eq!(a.as_slice(), &[12.0, 24.0]);
        a.add_assign(&b);
        assert_eq!(a.as_slice(), &[22.0, 44.0]);
        a.fill_zero();
        assert_eq!(a.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn axpy_length_mismatch_panics() {
        let mut a = GradientVector::zeros(2);
        let b = GradientVector::zeros(3);
        a.axpy(1.0, &b);
    }

    #[test]
    fn mean_of_gradients() {
        let a = GradientVector::from_vec(vec![1.0, 3.0]);
        let b = GradientVector::from_vec(vec![3.0, 5.0]);
        let m = GradientVector::mean_of(&[a, b]);
        assert_eq!(m.as_slice(), &[2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "at least one gradient")]
    fn mean_of_empty_panics() {
        GradientVector::mean_of(&[]);
    }

    #[test]
    fn clipping() {
        let g = GradientVector::from_vec(vec![3.0, 4.0]);
        let clipped = g.clipped_by_norm(1.0);
        assert!((clipped.l2_norm() - 1.0).abs() < 1e-6);
        // Already inside the ball: unchanged.
        let clipped = g.clipped_by_norm(10.0);
        assert_eq!(clipped.as_slice(), g.as_slice());
    }

    #[test]
    fn distance() {
        let a = GradientVector::from_vec(vec![1.0, 1.0]);
        let b = GradientVector::from_vec(vec![4.0, 5.0]);
        assert!((a.l2_distance(&b) - 5.0).abs() < 1e-9);
    }
}
