//! Linear-time threshold scans.
//!
//! Every threshold-estimation compressor (SIDCo, RedSync, GaussianKSGD, and the
//! threshold stage of DGC) finishes with one of these scans, so they are kept
//! allocation-lean and branch-simple.

use crate::sparse::SparseGradient;

/// Counts how many elements satisfy `|g| >= threshold` without materialising them.
pub fn count_above_threshold(grad: &[f32], threshold: f64) -> usize {
    let t = threshold as f32;
    grad.iter().filter(|g| g.abs() >= t).count()
}

/// Selects all elements with `|g| >= threshold` into a sparse gradient
/// (the `C_η` operator of the paper).
pub fn select_above_threshold(grad: &[f32], threshold: f64) -> SparseGradient {
    let t = threshold as f32;
    let mut indices = Vec::new();
    let mut values = Vec::new();
    for (i, &g) in grad.iter().enumerate() {
        if g.abs() >= t {
            indices.push(i as u32);
            values.push(g);
        }
    }
    SparseGradient::new(indices, values, grad.len())
}

/// Selects elements with `|g| >= threshold` but never more than `max_elements`,
/// preferring the largest magnitudes when the cap binds.
///
/// DGC's hierarchical step and the capped variants of the heuristic estimators use
/// this to guarantee they never exceed the target `k` by an unbounded amount.
pub fn select_above_threshold_capped(
    grad: &[f32],
    threshold: f64,
    max_elements: usize,
) -> SparseGradient {
    let selected = select_above_threshold(grad, threshold);
    if selected.nnz() <= max_elements {
        return selected;
    }
    // Cap bound: keep only the top `max_elements` of the already-selected subset.
    let mut pairs: Vec<(u32, f32)> = selected.iter().collect();
    pairs.sort_by(|a, b| {
        b.1.abs()
            .partial_cmp(&a.1.abs())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    pairs.truncate(max_elements);
    SparseGradient::from_pairs(pairs, grad.len())
}

/// Collects the absolute values of the elements whose magnitude strictly exceeds
/// `threshold` (the exceedance set used by the multi-stage estimator when it needs
/// the raw values rather than just moments).
pub fn exceedance_magnitudes(grad: &[f32], threshold: f64) -> Vec<f32> {
    let t = threshold as f32;
    grad.iter().map(|g| g.abs()).filter(|&a| a > t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const GRAD: [f32; 6] = [0.1, -0.5, 0.25, -0.05, 0.9, -0.3];

    #[test]
    fn count_matches_select() {
        for &t in &[0.0, 0.05, 0.2, 0.5, 1.0] {
            let count = count_above_threshold(&GRAD, t);
            let selected = select_above_threshold(&GRAD, t);
            assert_eq!(count, selected.nnz(), "mismatch at threshold {t}");
        }
    }

    #[test]
    fn select_preserves_signs_and_positions() {
        // >= semantics: |-0.3| == 0.3 is included.
        let s = select_above_threshold(&GRAD, 0.3);
        assert_eq!(s.indices(), &[1, 4, 5]);
        assert_eq!(s.values(), &[-0.5, 0.9, -0.3]);
        assert_eq!(s.dense_len(), 6);
        let strict = select_above_threshold(&GRAD, 0.31);
        assert_eq!(strict.indices(), &[1, 4]);
    }

    #[test]
    fn threshold_zero_selects_everything() {
        let s = select_above_threshold(&GRAD, 0.0);
        assert_eq!(s.nnz(), GRAD.len());
    }

    #[test]
    fn threshold_above_max_selects_nothing() {
        let s = select_above_threshold(&GRAD, 2.0);
        assert_eq!(s.nnz(), 0);
        assert_eq!(count_above_threshold(&GRAD, 2.0), 0);
    }

    #[test]
    fn capped_selection_keeps_largest() {
        let s = select_above_threshold_capped(&GRAD, 0.0, 2);
        assert_eq!(s.nnz(), 2);
        let mut mags: Vec<f32> = s.values().iter().map(|v| v.abs()).collect();
        mags.sort_by(|a, b| b.partial_cmp(a).unwrap());
        assert_eq!(mags, vec![0.9, 0.5]);
        // Cap not binding: identical to the plain selection.
        let uncapped = select_above_threshold_capped(&GRAD, 0.31, 10);
        assert_eq!(uncapped.nnz(), 2);
    }

    #[test]
    fn exceedances_are_strict_and_absolute() {
        let ex = exceedance_magnitudes(&GRAD, 0.25);
        let mut sorted = ex.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(sorted, vec![0.3, 0.5, 0.9]);
        assert!(exceedance_magnitudes(&GRAD, 1.0).is_empty());
    }

    #[test]
    fn empty_gradient() {
        assert_eq!(count_above_threshold(&[], 0.1), 0);
        assert_eq!(select_above_threshold(&[], 0.1).nnz(), 0);
        assert!(exceedance_magnitudes(&[], 0.1).is_empty());
    }
}
