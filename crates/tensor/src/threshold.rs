//! Linear-time threshold scans.
//!
//! Every threshold-estimation compressor (SIDCo, RedSync, GaussianKSGD, and the
//! threshold stage of DGC) finishes with one of these scans, so they are kept
//! allocation-lean and branch-simple.
//!
//! # Boundary semantics
//!
//! Every operator in this module (and the exceedance moments in `sidco-stats`)
//! uses the **inclusive** comparison `|g| >= threshold`, evaluated in `f32`
//! with the threshold rounded once. The count, the selection operator `C_η`,
//! and the exceedance set the multi-stage PoT refit fits are therefore always
//! the *same* set of finite elements, even when gradient values tie the fitted
//! threshold exactly — an inconsistency (`>` in the exceedance path vs `>=` in
//! selection) previously made the refit see fewer elements than the selection
//! would transmit. (The one intentional exception: non-finite magnitudes are
//! transmitted by the selection but skipped by every moment pass in
//! `sidco-stats`, which guards the statistical fits against `inf`/`NaN`.)

use crate::sparse::SparseGradient;

/// Counts how many elements satisfy `|g| >= threshold` without materialising them.
pub fn count_above_threshold(grad: &[f32], threshold: f64) -> usize {
    let t = threshold as f32;
    grad.iter().filter(|g| g.abs() >= t).count()
}

/// Selects all elements with `|g| >= threshold` into a sparse gradient
/// (the `C_η` operator of the paper).
pub fn select_above_threshold(grad: &[f32], threshold: f64) -> SparseGradient {
    let t = threshold as f32;
    let mut indices = Vec::new();
    let mut values = Vec::new();
    for (i, &g) in grad.iter().enumerate() {
        if g.abs() >= t {
            indices.push(i as u32);
            values.push(g);
        }
    }
    SparseGradient::new(indices, values, grad.len())
}

/// Selects elements with `|g| >= threshold` but never more than `max_elements`,
/// preferring the largest magnitudes when the cap binds.
///
/// DGC's hierarchical step and the capped variants of the heuristic estimators use
/// this to guarantee they never exceed the target `k` by an unbounded amount.
/// When the cap binds, ties at the boundary magnitude are broken by ascending
/// index, so capped results are reproducible across runs and machines.
pub fn select_above_threshold_capped(
    grad: &[f32],
    threshold: f64,
    max_elements: usize,
) -> SparseGradient {
    let selected = select_above_threshold(grad, threshold);
    cap_largest(selected, max_elements)
}

/// Keeps only the `max_elements` largest-magnitude entries of `sparse`
/// (deterministic: ties at the cut are broken by ascending index), returning the
/// survivors in ascending index order. A selection already within the cap is
/// returned unchanged.
///
/// Uses an `O(nnz)` expected-time partition (`select_nth_unstable_by`) rather
/// than a full sort, so capping never reintroduces the `O(n log n)` cost the
/// threshold estimators exist to avoid.
pub fn cap_largest(sparse: SparseGradient, max_elements: usize) -> SparseGradient {
    if sparse.nnz() <= max_elements {
        return sparse;
    }
    let dense_len = sparse.dense_len();
    let mut pairs: Vec<(u32, f32)> = sparse.iter().collect();
    if max_elements == 0 {
        return SparseGradient::empty(dense_len);
    }
    // Total order: magnitude descending, then index ascending — the cut at
    // `max_elements` is unique even with tied magnitudes.
    pairs.select_nth_unstable_by(max_elements - 1, |a, b| {
        b.1.abs()
            .partial_cmp(&a.1.abs())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });
    pairs.truncate(max_elements);
    pairs.sort_by_key(|&(i, _)| i);
    SparseGradient::from_pairs(pairs, dense_len)
}

/// Collects the absolute values of the elements with `|g| >= threshold` (the
/// exceedance set used by the multi-stage estimator when it needs the raw values
/// rather than just moments).
///
/// Inclusive on purpose: this is exactly the set [`select_above_threshold`]
/// transmits, so a refit over these values reasons about the same elements the
/// selection operator keeps (see the module docs on boundary semantics).
pub fn exceedance_magnitudes(grad: &[f32], threshold: f64) -> Vec<f32> {
    let t = threshold as f32;
    grad.iter().map(|g| g.abs()).filter(|&a| a >= t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const GRAD: [f32; 6] = [0.1, -0.5, 0.25, -0.05, 0.9, -0.3];

    #[test]
    fn count_matches_select() {
        for &t in &[0.0, 0.05, 0.2, 0.5, 1.0] {
            let count = count_above_threshold(&GRAD, t);
            let selected = select_above_threshold(&GRAD, t);
            assert_eq!(count, selected.nnz(), "mismatch at threshold {t}");
        }
    }

    #[test]
    fn select_preserves_signs_and_positions() {
        // >= semantics: |-0.3| == 0.3 is included.
        let s = select_above_threshold(&GRAD, 0.3);
        assert_eq!(s.indices(), &[1, 4, 5]);
        assert_eq!(s.values(), &[-0.5, 0.9, -0.3]);
        assert_eq!(s.dense_len(), 6);
        let strict = select_above_threshold(&GRAD, 0.31);
        assert_eq!(strict.indices(), &[1, 4]);
    }

    #[test]
    fn threshold_zero_selects_everything() {
        let s = select_above_threshold(&GRAD, 0.0);
        assert_eq!(s.nnz(), GRAD.len());
    }

    #[test]
    fn threshold_above_max_selects_nothing() {
        let s = select_above_threshold(&GRAD, 2.0);
        assert_eq!(s.nnz(), 0);
        assert_eq!(count_above_threshold(&GRAD, 2.0), 0);
    }

    #[test]
    fn capped_selection_keeps_largest() {
        let s = select_above_threshold_capped(&GRAD, 0.0, 2);
        assert_eq!(s.nnz(), 2);
        let mut mags: Vec<f32> = s.values().iter().map(|v| v.abs()).collect();
        mags.sort_by(|a, b| b.partial_cmp(a).unwrap());
        assert_eq!(mags, vec![0.9, 0.5]);
        // Cap not binding: identical to the plain selection.
        let uncapped = select_above_threshold_capped(&GRAD, 0.31, 10);
        assert_eq!(uncapped.nnz(), 2);
        // Zero cap: empty selection.
        assert_eq!(select_above_threshold_capped(&GRAD, 0.0, 0).nnz(), 0);
    }

    #[test]
    fn capped_selection_is_deterministic_on_ties() {
        // Eight tied magnitudes, cap at 3: the lowest three indices must win, and
        // the result must be in ascending index order.
        let tied = [0.5f32, -0.5, 0.5, 0.5, -0.5, 0.5, 0.5, -0.5];
        let s = select_above_threshold_capped(&tied, 0.1, 3);
        assert_eq!(s.indices(), &[0, 1, 2]);
        assert_eq!(s.values(), &[0.5, -0.5, 0.5]);
        // Mixed magnitudes with ties at the cut: 0.9 wins outright, then the two
        // lowest-indexed 0.5s.
        let mixed = [0.5f32, 0.9, -0.5, 0.5, 0.5];
        let s = select_above_threshold_capped(&mixed, 0.0, 3);
        assert_eq!(s.indices(), &[0, 1, 2]);
    }

    #[test]
    fn exceedances_are_inclusive_and_absolute() {
        let ex = exceedance_magnitudes(&GRAD, 0.25);
        let mut sorted = ex.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(sorted, vec![0.25, 0.3, 0.5, 0.9]);
        assert!(exceedance_magnitudes(&GRAD, 1.0).is_empty());
    }

    #[test]
    fn boundary_semantics_agree_on_exact_ties() {
        // Regression: values tying the threshold exactly must be seen by *all*
        // three operators, so the PoT refit set equals the transmitted set.
        let grad = [0.25f32, -0.25, 0.1, 0.7, -0.25, 0.25];
        let t = 0.25;
        let count = count_above_threshold(&grad, t);
        let selected = select_above_threshold(&grad, t);
        let exceedances = exceedance_magnitudes(&grad, t);
        assert_eq!(count, 5);
        assert_eq!(selected.nnz(), count);
        assert_eq!(exceedances.len(), count);
        // The PoT refit input must agree with the selection even when the f64
        // threshold is not representable in f32 (0.35 rounds down, so the
        // 0.35f32 elements tie the rounded threshold and are transmitted).
        let irrational = [0.35f32, -0.35, 0.1, 0.7];
        let eta = 0.35f64;
        let refit = sidco_stats::moments::AbsMoments::compute_exceedances(&irrational, eta);
        assert_eq!(count_above_threshold(&irrational, eta), 3);
        assert_eq!(select_above_threshold(&irrational, eta).nnz(), 3);
        assert_eq!(exceedance_magnitudes(&irrational, eta).len(), 3);
        assert_eq!(refit.count, 3);
    }

    #[test]
    fn empty_gradient() {
        assert_eq!(count_above_threshold(&[], 0.1), 0);
        assert_eq!(select_above_threshold(&[], 0.1).nnz(), 0);
        assert!(exceedance_magnitudes(&[], 0.1).is_empty());
    }
}
