//! `cargo run -p sidco-lint [root]` — scan the workspace sources and exit
//! nonzero if any rule fires. See the library docs for the rule list.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root_arg = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    let root = Path::new(&root_arg);
    let violations = match sidco_lint::scan_workspace(root) {
        Ok(v) => v,
        Err(err) => {
            eprintln!("sidco-lint: failed to scan {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };
    for violation in &violations {
        println!("{violation}");
    }
    if violations.is_empty() {
        println!("sidco-lint: clean");
        ExitCode::SUCCESS
    } else {
        println!("sidco-lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}
