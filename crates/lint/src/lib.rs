//! `sidco-lint`: the workspace's own source lint pass.
//!
//! Five rules encode conventions this codebase has converged on and that
//! rustc/clippy cannot enforce (run as `cargo run -p sidco-lint`; CI gates on
//! a clean pass):
//!
//! 1. **`unwrap-invariant`** — no `.unwrap()` / `.expect(…)` in non-test
//!    code without justification. An `.expect` whose message mentions
//!    `poisoned` is the documented lock-poisoning convention and passes;
//!    anything else needs an `// INVARIANT: …` comment on the line or just
//!    above it stating why the failure is impossible.
//! 2. **`dist-cast-guard`** — float→integer `as` casts in `crates/dist`
//!    (the simulator computes byte counts and chunk sizes from float rates)
//!    must go through a guarded helper or carry an `// INVARIANT:` comment
//!    bounding the value — `as` silently saturates NaN to 0 and truncates,
//!    which turned real modelling bugs into silent zeros before
//!    `projected_payload_bytes` established the guarded pattern.
//! 3. **`sim-wallclock`** — no `Instant::now` / `SystemTime` in
//!    `crates/dist`, and none of `sidco-trace`'s real-clock surface either
//!    (`real_now` / `real_span` / `Lane::Real` / `RealSpanGuard`): simulated
//!    time is the only clock there, and the `VirtualClock` facade is the one
//!    sanctioned way to carry it into traces. Wall-clock reads make runs
//!    nondeterministic.
//! 4. **`ordering-justification`** — every explicit atomic
//!    `Ordering::…` choice carries a nearby comment justifying it
//!    (mentioning the ordering, the fence/lock pairing, or that the value is
//!    a pure observation).
//! 5. **`safety-comment`** — every `unsafe` block or function has a
//!    `// SAFETY: …` comment just above it.
//!
//! The scanner is deliberately *textual*, not syntactic: it strips string
//! literals and comments with a small state machine (so rule patterns inside
//! strings or docs don't fire), tracks `#[cfg(test)]` regions by brace
//! depth, and classifies whole files as test code by path (`tests/`,
//! `benches/`, `examples/`). That keeps it dependency-free and fast — the
//! cost is that it lints the written convention, not the AST; the few
//! heuristics are documented on [`strip`].

use std::path::{Path, PathBuf};

/// One line of source split into the three channels the rules care about.
#[derive(Debug, Default, Clone)]
pub struct StrippedLine {
    /// Code with string-literal contents and comments removed.
    pub code: String,
    /// Contents of comments on this line (line, block, and doc comments).
    pub comment: String,
    /// Contents of string literals on this line.
    pub strings: String,
}

#[derive(Clone, Copy)]
enum State {
    Code,
    /// Nested block-comment depth (Rust block comments nest).
    Block(u32),
    Line,
    Str,
    /// Raw string, with the number of `#`s that close it.
    RawStr(u32),
    Char,
}

/// Splits `source` into per-line code/comment/string channels.
///
/// Heuristics (documented limitations of the textual approach):
/// * A `'` starts a char literal only when followed by an escape or by
///   `X'` — otherwise it is treated as a lifetime.
/// * Raw strings support any number of `#`s; raw identifiers (`r#match`) are
///   recognised by the missing quote.
pub fn strip(source: &str) -> Vec<StrippedLine> {
    let mut lines = Vec::new();
    let mut current = StrippedLine::default();
    let mut state = State::Code;
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if matches!(state, State::Line) {
                state = State::Code;
            }
            lines.push(std::mem::take(&mut current));
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                match c {
                    '/' if next == Some('/') => {
                        state = State::Line;
                        i += 2;
                        continue;
                    }
                    '/' if next == Some('*') => {
                        state = State::Block(1);
                        i += 2;
                        continue;
                    }
                    '"' => {
                        current.code.push('"');
                        state = State::Str;
                    }
                    'r' | 'b' => {
                        // Possible raw/byte string start: r", br", r#", …
                        let mut j = i + 1;
                        if c == 'b' && chars.get(j) == Some(&'r') {
                            j += 1;
                        }
                        let mut hashes = 0;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        let prev_ident =
                            i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_');
                        if !prev_ident && chars.get(j) == Some(&'"') && (c == 'r' || j > i + 1) {
                            for &cc in &chars[i..=j] {
                                current.code.push(cc);
                            }
                            state = State::RawStr(hashes);
                            i = j + 1;
                            continue;
                        }
                        current.code.push(c);
                    }
                    '\'' => {
                        // Char literal vs lifetime.
                        let is_char = matches!(
                            (next, chars.get(i + 2).copied()),
                            (Some('\\'), _) | (Some(_), Some('\''))
                        );
                        current.code.push('\'');
                        if is_char {
                            state = State::Char;
                        }
                    }
                    _ => current.code.push(c),
                }
            }
            State::Block(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::Block(depth - 1)
                    };
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    state = State::Block(depth + 1);
                    i += 2;
                    continue;
                }
                current.comment.push(c);
            }
            State::Line => current.comment.push(c),
            State::Str => match c {
                '\\' => {
                    if let Some(&esc) = chars.get(i + 1) {
                        if esc != '\n' {
                            current.strings.push(esc);
                        }
                        i += 2;
                        continue;
                    }
                }
                '"' => {
                    current.code.push('"');
                    state = State::Code;
                }
                _ => current.strings.push(c),
            },
            State::RawStr(hashes) => {
                if c == '"' {
                    let closes = (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'));
                    if closes {
                        current.code.push('"');
                        for _ in 0..hashes {
                            current.code.push('#');
                        }
                        state = State::Code;
                        i += 1 + hashes as usize;
                        continue;
                    }
                }
                current.strings.push(c);
            }
            State::Char => {
                if c == '\\' {
                    i += 2;
                    continue;
                }
                if c == '\'' {
                    current.code.push('\'');
                    state = State::Code;
                }
            }
        }
        i += 1;
    }
    lines.push(current);
    lines
}

/// Marks the lines covered by `#[cfg(test)]` items (the attribute line
/// through the close of the item's brace block, or through the `;` of a
/// braceless item).
pub fn test_region_mask(lines: &[StrippedLine]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut region: Option<i64> = None; // brace depth once inside a region
    let mut armed = false; // attribute seen, item body not yet entered
    for (idx, line) in lines.iter().enumerate() {
        if region.is_none() && !armed && line.code.contains("#[cfg(test)") {
            armed = true;
        }
        if armed || region.is_some() {
            mask[idx] = true;
        }
        for c in line.code.chars() {
            match c {
                '{' => {
                    if armed {
                        armed = false;
                        region = Some(1);
                    } else if let Some(depth) = region.as_mut() {
                        *depth += 1;
                    }
                }
                '}' => {
                    if let Some(depth) = region.as_mut() {
                        *depth -= 1;
                        if *depth == 0 {
                            region = None;
                        }
                    }
                }
                ';' if armed => {
                    // `#[cfg(test)] use …;` — a braceless item.
                    armed = false;
                }
                _ => {}
            }
        }
    }
    mask
}

/// What the rules need to know about the file being scanned.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Workspace-relative path, used in diagnostics.
    pub path: String,
    /// Whole file is test/bench/example code (by path) — rules 1 and 4 are
    /// about production code and skip such files entirely.
    pub is_test_file: bool,
    /// File belongs to `crates/dist` (the simulator) — enables rules 2 and 3.
    pub is_dist: bool,
}

impl FileContext {
    /// Classifies a workspace-relative path.
    pub fn classify(path: &str) -> Self {
        let is_test_file = Path::new(path).components().any(|c| {
            matches!(
                c.as_os_str().to_str(),
                Some("tests" | "benches" | "examples")
            )
        });
        Self {
            path: path.to_string(),
            is_test_file,
            is_dist: path.contains("crates/dist/"),
        }
    }
}

/// One finding: file, 1-based line, rule id, message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule identifier (e.g. `unwrap-invariant`).
    pub rule: &'static str,
    /// Human-readable explanation with the expected fix.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Does any comment in `lines[lo..=hi]` contain `needle`?
fn comment_window(lines: &[StrippedLine], hi: usize, span: usize, needle: &str) -> bool {
    let lo = hi.saturating_sub(span);
    lines[lo..=hi].iter().any(|l| l.comment.contains(needle))
}

/// Case-insensitive keyword search over the comment window.
fn comment_window_any(lines: &[StrippedLine], hi: usize, span: usize, keys: &[&str]) -> bool {
    let lo = hi.saturating_sub(span);
    lines[lo..=hi].iter().any(|l| {
        let lower = l.comment.to_lowercase();
        keys.iter().any(|k| lower.contains(k))
    })
}

/// `needle` present in `code` at a word boundary on both sides.
fn word_in(code: &str, needle: &str) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(needle) {
        let start = from + pos;
        let end = start + needle.len();
        let left_ok =
            start == 0 || !(bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_');
        let right_ok =
            end == code.len() || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_');
        if left_ok && right_ok {
            return true;
        }
        from = end;
    }
    false
}

const INVARIANT_TAG: &str = "INVARIANT:";
const SAFETY_TAG: &str = "SAFETY:";
/// How far above a flagged line a justification comment may sit.
const INVARIANT_SPAN: usize = 3;
const SAFETY_SPAN: usize = 6;
const ORDERING_SPAN: usize = 6;

/// Words any of which justify an explicit atomic `Ordering` choice when they
/// appear in a nearby comment (case-insensitive). Deliberately generous: the
/// rule exists to force *a* stated reason, not to grade it.
const ORDERING_KEYS: &[&str] = &[
    "order", "relax", "seqcst", "acquire", "release", "acqrel", "fence", "atomic", "synchron",
    "lock", "observ", "race", "monoton",
];

const ATOMIC_ORDERINGS: &[&str] = &[
    "Ordering::Relaxed",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
    "Ordering::SeqCst",
];

const FLOAT_MARKERS: &[&str] = &["f64", "f32", ".ceil()", ".floor()", ".round()", ".trunc()"];

/// Does the code contain a float literal (`digit . digit`)? Tuple indexing
/// (`x.0`) and ranges (`0..n`) don't match — the dot must sit between two
/// digits.
fn has_float_literal(code: &str) -> bool {
    let bytes = code.as_bytes();
    bytes
        .windows(3)
        .any(|w| w[1] == b'.' && w[0].is_ascii_digit() && w[2].is_ascii_digit())
}
const INT_CASTS: &[&str] = &[
    "as usize", "as u64", "as u32", "as u16", "as u8", "as isize", "as i64", "as i32",
];

/// Runs every rule over one file and returns its violations in line order.
pub fn scan_file(ctx: &FileContext, source: &str) -> Vec<Violation> {
    let lines = strip(source);
    let mask = test_region_mask(&lines);
    let mut out = Vec::new();
    let mut violation = |line: usize, rule: &'static str, message: String| {
        out.push(Violation {
            file: ctx.path.clone(),
            line: line + 1,
            rule,
            message,
        });
    };
    for (i, line) in lines.iter().enumerate() {
        let code = &line.code;
        let in_test = ctx.is_test_file || mask[i];

        // Rule 1: unwrap/expect in production code.
        if !in_test {
            let has_invariant = comment_window(&lines, i, INVARIANT_SPAN, INVARIANT_TAG);
            if code.contains(".unwrap()") && !has_invariant {
                violation(
                    i,
                    "unwrap-invariant",
                    "`.unwrap()` in non-test code — use `.expect(\"… poisoned\")` for lock \
                     poisoning, or add an `// INVARIANT:` comment stating why this cannot fail"
                        .to_string(),
                );
            }
            if code.contains(".expect(") && !has_invariant {
                // The message may sit on this line or wrap onto the next.
                let text: String = lines[i..(i + 3).min(lines.len())]
                    .iter()
                    .map(|l| l.strings.as_str())
                    .collect();
                if !text.contains("poisoned") {
                    violation(
                        i,
                        "unwrap-invariant",
                        "`.expect(…)` in non-test code without the lock-poisoning convention — \
                         mention `poisoned` in the message or add an `// INVARIANT:` comment"
                            .to_string(),
                    );
                }
            }
        }

        // Rule 2: float→int casts in the simulator.
        if ctx.is_dist
            && !in_test
            && INT_CASTS.iter().any(|c| code.contains(c))
            && (FLOAT_MARKERS.iter().any(|m| code.contains(m)) || has_float_literal(code))
            && !comment_window(&lines, i, INVARIANT_SPAN, INVARIANT_TAG)
        {
            violation(
                i,
                "dist-cast-guard",
                "float→integer `as` cast in crates/dist — route through a guarded helper \
                 (see `projected_payload_bytes`) or add an `// INVARIANT:` comment bounding \
                 the value (`as` saturates NaN to 0 and truncates silently)"
                    .to_string(),
            );
        }

        // Rule 3: wall-clock reads in the simulator — direct std reads and
        // sidco-trace's real-clock recording surface alike.
        if ctx.is_dist && !in_test {
            let std_clock = code.contains("Instant::now") || word_in(code, "SystemTime");
            let trace_clock = ["real_now", "real_span", "RealSpanGuard"]
                .iter()
                .any(|t| word_in(code, t))
                || code.contains("Lane::Real");
            if std_clock || trace_clock {
                violation(
                    i,
                    "sim-wallclock",
                    "wall-clock read in crates/dist — the simulator's virtual clock is the \
                     only time source (trace model time through `sidco_trace::VirtualClock`, \
                     never `real_now`/`real_span`/`Lane::Real`); wall-clock reads make runs \
                     nondeterministic"
                        .to_string(),
                );
            }
        }

        // Rule 4: atomic ordering choices must be justified.
        if !in_test
            && ATOMIC_ORDERINGS.iter().any(|o| code.contains(o))
            && !comment_window_any(&lines, i, ORDERING_SPAN, ORDERING_KEYS)
        {
            violation(
                i,
                "ordering-justification",
                "explicit atomic `Ordering` without a nearby justification comment — state \
                 what the ordering pairs with (fence, lock, release/acquire edge) or that \
                 the value is a pure observation"
                    .to_string(),
            );
        }

        // Rule 5: unsafe needs a SAFETY comment (test code included — an
        // unsound test is still unsound).
        if word_in(code, "unsafe") && !comment_window(&lines, i, SAFETY_SPAN, SAFETY_TAG) {
            violation(
                i,
                "safety-comment",
                "`unsafe` without a `// SAFETY:` comment just above it".to_string(),
            );
        }
    }
    out
}

/// Recursively collects the `.rs` files under `root`, skipping build output
/// and VCS metadata, in sorted order (stable diagnostics).
pub fn collect_rs_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name == ".git" {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Scans every `.rs` file under `root` and returns all violations, sorted by
/// file then line.
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut all = Vec::new();
    for path in collect_rs_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = std::fs::read_to_string(&path)?;
        let ctx = FileContext::classify(&rel);
        all.extend(scan_file(&ctx, &source));
    }
    all.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
    Ok(all)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prod(path: &str) -> FileContext {
        FileContext::classify(path)
    }

    fn rules(path: &str, src: &str) -> Vec<&'static str> {
        scan_file(&prod(path), src)
            .into_iter()
            .map(|v| v.rule)
            .collect()
    }

    #[test]
    fn stripper_separates_code_comments_and_strings() {
        let src = "let x = \"a // not comment\"; // real: .unwrap()\nlet y = 'a';";
        let lines = strip(src);
        assert_eq!(lines.len(), 2);
        assert!(lines[0].code.contains("let x = \"\";"));
        assert!(lines[0].comment.contains("real: .unwrap()"));
        assert!(lines[0].strings.contains("a // not comment"));
        assert!(lines[1].code.contains("let y = '';"));
    }

    #[test]
    fn stripper_handles_raw_strings_block_comments_and_lifetimes() {
        let src = "let r = r#\"as usize .unwrap()\"#; /* outer /* nested */ still */ fn f<'a>(x: &'a str) {}";
        let lines = strip(src);
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[0].strings.contains("as usize .unwrap()"));
        assert!(lines[0].comment.contains("nested"));
        assert!(lines[0].comment.contains("still"));
        assert!(lines[0].code.contains("fn f<'a>(x: &'a str) {}"));
    }

    #[test]
    fn cfg_test_regions_are_masked_by_brace_depth() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() { x.unwrap(); }\n}\nfn c() {}";
        let lines = strip(src);
        let mask = test_region_mask(&lines);
        assert_eq!(mask, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn unwrap_rule_fires_and_is_suppressed() {
        let bad = "fn f() { x.unwrap(); }";
        assert_eq!(rules("crates/x/src/a.rs", bad), vec!["unwrap-invariant"]);
        let invariant = "// INVARIANT: x was just inserted above\nfn f() { x.unwrap(); }";
        assert!(rules("crates/x/src/a.rs", invariant).is_empty());
        let poisoned = "fn f() { m.lock().expect(\"state poisoned\"); }";
        assert!(rules("crates/x/src/a.rs", poisoned).is_empty());
        let bare_expect = "fn f() { x.expect(\"always works\"); }";
        assert_eq!(
            rules("crates/x/src/a.rs", bare_expect),
            vec!["unwrap-invariant"]
        );
        // Test code by path or region is exempt.
        assert!(rules("crates/x/tests/a.rs", bad).is_empty());
        let in_test_mod = "#[cfg(test)]\nmod tests {\n fn f() { x.unwrap(); }\n}";
        assert!(rules("crates/x/src/a.rs", in_test_mod).is_empty());
        // unwrap_or_else is not unwrap.
        assert!(rules("crates/x/src/a.rs", "fn f() { x.unwrap_or_else(g); }").is_empty());
    }

    #[test]
    fn expect_message_may_wrap_to_the_next_line() {
        let wrapped = "fn f() {\n m.lock().expect(\n  \"sleep lock poisoned\",\n ); }";
        assert!(rules("crates/x/src/a.rs", wrapped).is_empty());
    }

    #[test]
    fn dist_cast_rule_is_scoped_to_dist_and_float_sources() {
        let bad = "let n = (bytes as f64 / rate).ceil() as usize;";
        assert_eq!(rules("crates/dist/src/a.rs", bad), vec!["dist-cast-guard"]);
        // Same code outside crates/dist: not this rule's business.
        assert!(rules("crates/core/src/a.rs", bad).is_empty());
        // Integer-to-integer casts in dist are fine.
        assert!(rules("crates/dist/src/a.rs", "let n = k as usize;").is_empty());
        // Bare float literals count as float sources too.
        assert_eq!(
            rules(
                "crates/dist/src/a.rs",
                "let n = (2.0 * delta * d) as usize;"
            ),
            vec!["dist-cast-guard"]
        );
        // …but tuple indexing and ranges are not float literals.
        assert!(rules("crates/dist/src/a.rs", "let n = pair.0 as usize;").is_empty());
        let guarded = "// INVARIANT: rate >= 1.0, so the quotient fits usize\nlet n = (bytes as f64 / rate).ceil() as usize;";
        assert!(rules("crates/dist/src/a.rs", guarded).is_empty());
    }

    #[test]
    fn wallclock_rule_fires_only_in_dist() {
        let bad = "let t = std::time::Instant::now();";
        assert_eq!(rules("crates/dist/src/a.rs", bad), vec!["sim-wallclock"]);
        assert!(rules("crates/bench/src/a.rs", bad).is_empty());
        assert_eq!(
            rules("crates/dist/src/a.rs", "let t = SystemTime::now();"),
            vec!["sim-wallclock"]
        );
        // Word boundary: `SystemTimeLike` is not `SystemTime`.
        assert!(rules("crates/dist/src/a.rs", "struct SystemTimeLike;").is_empty());
        // The trace crate's real-clock surface is banned in dist too…
        for bad in [
            "let g = sink.real_span(\"x\");",
            "let t = sink.real_now();",
            "let track = sink.track(\"t\", Lane::Real);",
            "fn f(g: RealSpanGuard) {}",
        ] {
            assert_eq!(
                rules("crates/dist/src/a.rs", bad),
                vec!["sim-wallclock"],
                "{bad}"
            );
            assert!(rules("crates/runtime/src/a.rs", bad).is_empty(), "{bad}");
        }
        // …while the virtual facade is the sanctioned clock.
        assert!(rules(
            "crates/dist/src/a.rs",
            "let mut clock = VirtualClock::new(0.0); let t = sink.track(\"s\", Lane::Virtual);"
        )
        .is_empty());
    }

    #[test]
    fn ordering_rule_wants_a_nearby_justification() {
        let bad = "fn f() { c.fetch_add(1, Ordering::Relaxed); }";
        assert_eq!(
            rules("crates/x/src/a.rs", bad),
            vec!["ordering-justification"]
        );
        let good = "// Relaxed: pure observation, nothing is inferred from the value\nfn f() { c.fetch_add(1, Ordering::Relaxed); }";
        assert!(rules("crates/x/src/a.rs", good).is_empty());
        // Plain `Ordering` imports and `cmp::Ordering` uses don't fire.
        assert!(rules("crates/x/src/a.rs", "use std::sync::atomic::Ordering;").is_empty());
        assert!(rules(
            "crates/x/src/a.rs",
            "fn f() -> Ordering { Ordering::Equal }"
        )
        .is_empty());
    }

    #[test]
    fn safety_rule_requires_a_safety_comment() {
        let bad = "fn f() { unsafe { g() } }";
        assert_eq!(rules("crates/x/src/a.rs", bad), vec!["safety-comment"]);
        let good = "// SAFETY: g has no preconditions on this platform\nfn f() { unsafe { g() } }";
        assert!(rules("crates/x/src/a.rs", good).is_empty());
        // `unsafe_code` (the lint name) is not the keyword `unsafe`.
        assert!(rules("crates/x/src/a.rs", "#![forbid(unsafe_code)]").is_empty());
        // Unsafe in tests still needs a SAFETY comment.
        assert_eq!(rules("crates/x/tests/a.rs", bad), vec!["safety-comment"]);
    }

    #[test]
    fn violations_format_as_file_line_rule() {
        let v = scan_file(&prod("crates/x/src/a.rs"), "fn f() { x.unwrap(); }");
        assert_eq!(v.len(), 1);
        let shown = v[0].to_string();
        assert!(
            shown.starts_with("crates/x/src/a.rs:1: [unwrap-invariant]"),
            "got: {shown}"
        );
    }

    #[test]
    fn the_whole_workspace_is_clean() {
        // The gate CI enforces, in unit-test form: every rule passes on every
        // workspace source file (the binary does the same walk).
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root exists");
        let violations = scan_workspace(root).expect("workspace scan reads all sources");
        assert!(
            violations.is_empty(),
            "sidco-lint found {} violation(s):\n{}",
            violations.len(),
            violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
