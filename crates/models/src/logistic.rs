//! Softmax (multinomial logistic) classification — the stand-in for the paper's
//! image-classification workloads, with a reportable top-1 accuracy.

use crate::dataset::ClassificationDataset;
use crate::model::DifferentiableModel;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sidco_tensor::GradientVector;

/// Softmax classifier `p(c|x) ∝ exp(W_c · x + b_c)` trained with cross-entropy.
///
/// Parameters are stored flat as `[W (classes × dim) | b (classes)]`.
///
/// # Example
///
/// ```
/// use sidco_models::dataset::ClassificationDataset;
/// use sidco_models::logistic::SoftmaxClassifier;
/// use sidco_models::DifferentiableModel;
///
/// let data = ClassificationDataset::gaussian_blobs(120, 6, 3, 4.0, 1);
/// let model = SoftmaxClassifier::new(data);
/// assert_eq!(model.num_parameters(), 3 * 6 + 3);
/// ```
#[derive(Debug, Clone)]
pub struct SoftmaxClassifier {
    data: ClassificationDataset,
}

impl SoftmaxClassifier {
    /// Wraps a classification dataset.
    pub fn new(data: ClassificationDataset) -> Self {
        Self { data }
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &ClassificationDataset {
        &self.data
    }

    fn dim(&self) -> usize {
        self.data.dim()
    }

    fn classes(&self) -> usize {
        self.data.classes()
    }

    /// Class logits for one example.
    fn logits(&self, params: &[f32], example: usize) -> Vec<f64> {
        let dim = self.dim();
        let classes = self.classes();
        let x = self.data.features(example);
        let bias_offset = classes * dim;
        (0..classes)
            .map(|c| {
                let w = &params[c * dim..(c + 1) * dim];
                let dot: f64 = w.iter().zip(x).map(|(&wj, &xj)| (wj * xj) as f64).sum();
                dot + params[bias_offset + c] as f64
            })
            .collect()
    }

    /// Softmax probabilities from logits (numerically stabilised).
    fn softmax(logits: &[f64]) -> Vec<f64> {
        let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = logits.iter().map(|&z| (z - max).exp()).collect();
        let sum: f64 = exps.iter().sum();
        exps.iter().map(|&e| e / sum).collect()
    }

    /// Predicted class of one example.
    pub fn predict(&self, params: &[f32], example: usize) -> usize {
        let logits = self.logits(params, example);
        logits
            .iter()
            .enumerate()
            // INVARIANT: logits are dot products of finite weights and
            // finite features, never NaN.
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
            .map(|(c, _)| c)
            .unwrap_or(0)
    }
}

impl DifferentiableModel for SoftmaxClassifier {
    fn num_parameters(&self) -> usize {
        self.classes() * self.dim() + self.classes()
    }

    fn layer_sizes(&self) -> Vec<usize> {
        vec![self.classes() * self.dim(), self.classes()]
    }

    fn num_examples(&self) -> usize {
        self.data.len()
    }

    fn initial_parameters(&self, seed: u64) -> GradientVector {
        let mut rng = SmallRng::seed_from_u64(seed);
        GradientVector::from_vec(
            (0..self.num_parameters())
                .map(|_| rng.gen_range(-0.01f32..0.01))
                .collect(),
        )
    }

    fn loss_and_gradient(&self, params: &[f32], examples: &[usize]) -> (f64, GradientVector) {
        assert_eq!(
            params.len(),
            self.num_parameters(),
            "parameter dimension mismatch"
        );
        assert!(!examples.is_empty(), "mini-batch must not be empty");
        let dim = self.dim();
        let classes = self.classes();
        let bias_offset = classes * dim;
        let m = examples.len() as f64;
        let mut grad = vec![0.0f32; params.len()];
        let mut loss = 0.0f64;
        for &i in examples {
            let probs = Self::softmax(&self.logits(params, i));
            let label = self.data.label(i);
            loss -= probs[label].max(1e-12).ln();
            let x = self.data.features(i);
            for c in 0..classes {
                let err = (probs[c] - if c == label { 1.0 } else { 0.0 }) / m;
                let errf = err as f32;
                let row = &mut grad[c * dim..(c + 1) * dim];
                for (gj, &xj) in row.iter_mut().zip(x) {
                    *gj += errf * xj;
                }
                grad[bias_offset + c] += errf;
            }
        }
        (loss / m, GradientVector::from_vec(grad))
    }

    fn evaluate(&self, params: &[f32]) -> f64 {
        let all: Vec<usize> = (0..self.data.len()).collect();
        self.loss_and_gradient(params, &all).0
    }

    fn accuracy(&self, params: &[f32]) -> Option<f64> {
        if self.data.is_empty() {
            return Some(0.0);
        }
        let correct = (0..self.data.len())
            .filter(|&i| self.predict(params, i) == self.data.label(i))
            .count();
        Some(correct as f64 / self.data.len() as f64)
    }

    fn name(&self) -> &'static str {
        "softmax-classifier"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> SoftmaxClassifier {
        SoftmaxClassifier::new(ClassificationDataset::gaussian_blobs(240, 10, 4, 5.0, 31))
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let m = model();
        let params = m.initial_parameters(1);
        let batch: Vec<usize> = (0..24).collect();
        let (_, grad) = m.loss_and_gradient(params.as_slice(), &batch);
        let h = 1e-3f32;
        for j in [0usize, 17, m.num_parameters() - 1] {
            let mut plus = params.clone();
            plus[j] += h;
            let mut minus = params.clone();
            minus[j] -= h;
            let numeric = (m.loss_and_gradient(plus.as_slice(), &batch).0
                - m.loss_and_gradient(minus.as_slice(), &batch).0)
                / (2.0 * h as f64);
            assert!(
                (grad[j] as f64 - numeric).abs() < 1e-3,
                "coordinate {j}: analytic {} vs numeric {numeric}",
                grad[j]
            );
        }
    }

    #[test]
    fn training_improves_accuracy_well_above_chance() {
        let m = model();
        let mut params = m.initial_parameters(2);
        let initial_acc = m.accuracy(params.as_slice()).unwrap();
        let all: Vec<usize> = (0..m.num_examples()).collect();
        for _ in 0..200 {
            let (_, grad) = m.loss_and_gradient(params.as_slice(), &all);
            params.axpy(-1.0, &grad);
        }
        let final_acc = m.accuracy(params.as_slice()).unwrap();
        assert!(
            final_acc > 0.9,
            "separable blobs should be nearly perfectly classified, got {final_acc} (from {initial_acc})"
        );
    }

    #[test]
    fn loss_at_uniform_prediction_is_log_classes() {
        let m = model();
        let params = vec![0.0f32; m.num_parameters()];
        let loss = m.evaluate(&params);
        assert!((loss - (4.0f64).ln()).abs() < 1e-6);
    }

    #[test]
    fn metadata_and_prediction_bounds() {
        let m = model();
        assert_eq!(m.name(), "softmax-classifier");
        assert_eq!(m.num_parameters(), 4 * 10 + 4);
        assert_eq!(m.layer_sizes(), vec![4 * 10, 4]);
        assert_eq!(m.num_examples(), 240);
        let params = m.initial_parameters(3);
        let p = m.predict(params.as_slice(), 0);
        assert!(p < 4);
        assert_eq!(m.dataset().classes(), 4);
    }
}
