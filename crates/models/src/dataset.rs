//! Synthetic datasets standing in for PTB / AN4 / CIFAR-10 / ImageNet.
//!
//! All generators are deterministic given a seed so that every worker in the
//! simulator (and every rerun of an experiment) sees the same data.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A dense regression dataset `y = X·w* + ε`.
#[derive(Debug, Clone)]
pub struct RegressionDataset {
    features: Vec<f32>,
    targets: Vec<f32>,
    true_weights: Vec<f32>,
    dim: usize,
}

impl RegressionDataset {
    /// Generates `n` examples of dimension `dim` with Gaussian features, a sparse
    /// ground-truth weight vector and additive noise of standard deviation `noise`.
    pub fn generate(n: usize, dim: usize, noise: f64, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        // Sparse ground truth: ~20% non-zero weights, emulating the compressible
        // structure that makes gradient sparsification attractive.
        let true_weights: Vec<f32> = (0..dim)
            .map(|_| {
                if rng.gen::<f64>() < 0.2 {
                    rng.gen_range(-1.0f32..1.0)
                } else {
                    0.0
                }
            })
            .collect();
        let mut features = Vec::with_capacity(n * dim);
        let mut targets = Vec::with_capacity(n);
        for _ in 0..n {
            let mut dot = 0.0f64;
            for &w in &true_weights {
                let x = sample_standard_normal(&mut rng) as f32;
                features.push(x);
                dot += (x * w) as f64;
            }
            targets.push((dot + noise * sample_standard_normal(&mut rng)) as f32);
        }
        Self {
            features,
            targets,
            true_weights,
            dim,
        }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// Returns `true` if the dataset holds no examples.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The feature row of example `i`.
    pub fn features(&self, i: usize) -> &[f32] {
        &self.features[i * self.dim..(i + 1) * self.dim]
    }

    /// The target of example `i`.
    pub fn target(&self, i: usize) -> f32 {
        self.targets[i]
    }

    /// The ground-truth weights the targets were generated from.
    pub fn true_weights(&self) -> &[f32] {
        &self.true_weights
    }
}

/// A multi-class classification dataset of Gaussian blobs.
#[derive(Debug, Clone)]
pub struct ClassificationDataset {
    features: Vec<f32>,
    labels: Vec<usize>,
    dim: usize,
    classes: usize,
}

impl ClassificationDataset {
    /// Generates `n` examples of dimension `dim` split evenly across `classes`
    /// Gaussian blobs whose centres are `separation` apart.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0` or `dim == 0`.
    pub fn gaussian_blobs(
        n: usize,
        dim: usize,
        classes: usize,
        separation: f64,
        seed: u64,
    ) -> Self {
        assert!(classes > 0 && dim > 0, "classes and dim must be positive");
        let mut rng = SmallRng::seed_from_u64(seed);
        // Random unit directions for the class centres.
        let centers: Vec<Vec<f32>> = (0..classes)
            .map(|_| {
                let raw: Vec<f64> = (0..dim).map(|_| sample_standard_normal(&mut rng)).collect();
                let norm = raw.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-9);
                raw.iter()
                    .map(|&x| (x / norm * separation) as f32)
                    .collect()
            })
            .collect();
        let mut features = Vec::with_capacity(n * dim);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let label = i % classes;
            for &center in &centers[label] {
                features.push(center + sample_standard_normal(&mut rng) as f32);
            }
            labels.push(label);
        }
        Self {
            features,
            labels,
            dim,
            classes,
        }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` if the dataset holds no examples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// The feature row of example `i`.
    pub fn features(&self, i: usize) -> &[f32] {
        &self.features[i * self.dim..(i + 1) * self.dim]
    }

    /// The label of example `i`.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }
}

/// A synthetic sequence-regression dataset for the RNN workload: each example is a
/// sequence of scalar-feature steps and the target is a weighted moving average of
/// the inputs, so the recurrent state genuinely matters.
#[derive(Debug, Clone)]
pub struct SequenceDataset {
    inputs: Vec<f32>,
    targets: Vec<f32>,
    seq_len: usize,
    input_dim: usize,
}

impl SequenceDataset {
    /// Generates `n` sequences of length `seq_len` with `input_dim` features per
    /// step.
    pub fn generate(n: usize, seq_len: usize, input_dim: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut inputs = Vec::with_capacity(n * seq_len * input_dim);
        let mut targets = Vec::with_capacity(n);
        for _ in 0..n {
            let mut running = 0.0f64;
            let mut decay_weight = 1.0f64;
            for t in 0..seq_len {
                let mut step_sum = 0.0f64;
                for _ in 0..input_dim {
                    let x = sample_standard_normal(&mut rng) as f32 * 0.5;
                    inputs.push(x);
                    step_sum += x as f64;
                }
                // Exponentially decayed contribution: later steps matter more.
                decay_weight = 0.9 * decay_weight + 0.1;
                running = 0.8 * running + 0.2 * step_sum * decay_weight;
                let _ = t;
            }
            targets.push(running.tanh() as f32);
        }
        Self {
            inputs,
            targets,
            seq_len,
            input_dim,
        }
    }

    /// Number of sequences.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// Returns `true` if the dataset holds no sequences.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Sequence length.
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// Per-step input dimension.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// The inputs of step `t` of sequence `i`.
    pub fn step(&self, i: usize, t: usize) -> &[f32] {
        let start = (i * self.seq_len + t) * self.input_dim;
        &self.inputs[start..start + self.input_dim]
    }

    /// The regression target of sequence `i`.
    pub fn target(&self, i: usize) -> f32 {
        self.targets[i]
    }
}

/// Standard-normal sample via Box–Muller (keeps the dependency surface to `rand`'s
/// uniform generator only).
fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regression_dataset_shapes_and_determinism() {
        let a = RegressionDataset::generate(100, 20, 0.1, 9);
        let b = RegressionDataset::generate(100, 20, 0.1, 9);
        assert_eq!(a.len(), 100);
        assert!(!a.is_empty());
        assert_eq!(a.dim(), 20);
        assert_eq!(a.features(3), b.features(3));
        assert_eq!(a.target(7), b.target(7));
        assert_eq!(a.true_weights().len(), 20);
    }

    #[test]
    fn regression_targets_follow_true_weights() {
        // With zero noise the target equals the dot product exactly.
        let d = RegressionDataset::generate(50, 10, 0.0, 10);
        for i in 0..d.len() {
            let dot: f64 = d
                .features(i)
                .iter()
                .zip(d.true_weights())
                .map(|(&x, &w)| (x * w) as f64)
                .sum();
            assert!((dot - d.target(i) as f64).abs() < 1e-4);
        }
    }

    #[test]
    fn classification_blobs_are_separable_by_construction() {
        let d = ClassificationDataset::gaussian_blobs(200, 8, 4, 6.0, 11);
        assert_eq!(d.len(), 200);
        assert_eq!(d.classes(), 4);
        assert_eq!(d.dim(), 8);
        // Labels cycle through classes.
        assert_eq!(d.label(0), 0);
        assert_eq!(d.label(5), 1);
        // Same-class examples are closer to their own centre than to another class's
        // examples on average (weak separability check).
        let dist = |a: &[f32], b: &[f32]| -> f64 {
            a.iter()
                .zip(b)
                .map(|(&x, &y)| ((x - y) as f64).powi(2))
                .sum::<f64>()
        };
        let same = dist(d.features(0), d.features(4));
        let diff = dist(d.features(0), d.features(1));
        assert!(same < diff * 4.0, "blobs should have some structure");
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn classification_rejects_zero_classes() {
        ClassificationDataset::gaussian_blobs(10, 4, 0, 1.0, 1);
    }

    #[test]
    fn sequence_dataset_shapes_and_bounded_targets() {
        let d = SequenceDataset::generate(30, 12, 3, 13);
        assert_eq!(d.len(), 30);
        assert_eq!(d.seq_len(), 12);
        assert_eq!(d.input_dim(), 3);
        assert_eq!(d.step(2, 5).len(), 3);
        for i in 0..d.len() {
            assert!(d.target(i).abs() <= 1.0, "tanh target must be bounded");
        }
    }

    #[test]
    fn box_muller_produces_reasonable_moments() {
        let mut rng = SmallRng::seed_from_u64(17);
        let xs: Vec<f64> = (0..50_000)
            .map(|_| sample_standard_normal(&mut rng))
            .collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.02);
        assert!((var - 1.0).abs() < 0.05);
    }
}
