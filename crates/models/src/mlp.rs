//! One-hidden-layer multilayer perceptron with hand-written backpropagation — the
//! non-convex CNN stand-in.

use crate::dataset::ClassificationDataset;
use crate::model::DifferentiableModel;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sidco_tensor::GradientVector;

/// A `dim → hidden → classes` network with tanh activations and a softmax
/// cross-entropy head.
///
/// Parameter layout (flat): `[W1 (hidden × dim) | b1 (hidden) | W2 (classes × hidden) | b2 (classes)]`.
///
/// # Example
///
/// ```
/// use sidco_models::dataset::ClassificationDataset;
/// use sidco_models::mlp::Mlp;
/// use sidco_models::DifferentiableModel;
///
/// let data = ClassificationDataset::gaussian_blobs(60, 5, 3, 4.0, 1);
/// let model = Mlp::new(data, 16);
/// assert_eq!(model.num_parameters(), 16 * 5 + 16 + 3 * 16 + 3);
/// ```
#[derive(Debug, Clone)]
pub struct Mlp {
    data: ClassificationDataset,
    hidden: usize,
}

impl Mlp {
    /// Wraps a classification dataset with the given hidden-layer width.
    ///
    /// # Panics
    ///
    /// Panics if `hidden == 0`.
    pub fn new(data: ClassificationDataset, hidden: usize) -> Self {
        assert!(hidden > 0, "hidden width must be positive");
        Self { data, hidden }
    }

    /// Hidden-layer width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    fn dim(&self) -> usize {
        self.data.dim()
    }

    fn classes(&self) -> usize {
        self.data.classes()
    }

    fn w1_offset(&self) -> usize {
        0
    }
    fn b1_offset(&self) -> usize {
        self.hidden * self.dim()
    }
    fn w2_offset(&self) -> usize {
        self.b1_offset() + self.hidden
    }
    fn b2_offset(&self) -> usize {
        self.w2_offset() + self.classes() * self.hidden
    }

    /// Forward pass for one example: returns (hidden activations, class probabilities).
    fn forward(&self, params: &[f32], example: usize) -> (Vec<f64>, Vec<f64>) {
        let dim = self.dim();
        let hidden = self.hidden;
        let classes = self.classes();
        let x = self.data.features(example);
        let w1 = &params[self.w1_offset()..self.b1_offset()];
        let b1 = &params[self.b1_offset()..self.w2_offset()];
        let w2 = &params[self.w2_offset()..self.b2_offset()];
        let b2 = &params[self.b2_offset()..];

        let mut h = vec![0.0f64; hidden];
        for (j, hj) in h.iter_mut().enumerate() {
            let row = &w1[j * dim..(j + 1) * dim];
            let pre: f64 = row
                .iter()
                .zip(x)
                .map(|(&w, &xi)| (w * xi) as f64)
                .sum::<f64>()
                + b1[j] as f64;
            *hj = pre.tanh();
        }
        let mut logits = vec![0.0f64; classes];
        for (c, logit) in logits.iter_mut().enumerate() {
            let row = &w2[c * hidden..(c + 1) * hidden];
            *logit = row
                .iter()
                .zip(&h)
                .map(|(&w, &hj)| w as f64 * hj)
                .sum::<f64>()
                + b2[c] as f64;
        }
        let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = logits.iter().map(|&z| (z - max).exp()).collect();
        let sum: f64 = exps.iter().sum();
        let probs = exps.iter().map(|&e| e / sum).collect();
        (h, probs)
    }

    /// Predicted class of one example.
    pub fn predict(&self, params: &[f32], example: usize) -> usize {
        let (_, probs) = self.forward(params, example);
        probs
            .iter()
            .enumerate()
            // INVARIANT: softmax outputs are finite by construction
            // (inputs are shifted by the max logit), never NaN.
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite probabilities"))
            .map(|(c, _)| c)
            .unwrap_or(0)
    }
}

impl DifferentiableModel for Mlp {
    fn num_parameters(&self) -> usize {
        self.hidden * self.dim() + self.hidden + self.classes() * self.hidden + self.classes()
    }

    fn layer_sizes(&self) -> Vec<usize> {
        vec![
            self.hidden * self.dim(),
            self.hidden,
            self.classes() * self.hidden,
            self.classes(),
        ]
    }

    fn num_examples(&self) -> usize {
        self.data.len()
    }

    fn initial_parameters(&self, seed: u64) -> GradientVector {
        let mut rng = SmallRng::seed_from_u64(seed);
        // Xavier-ish uniform initialisation keyed off the fan-in of each block.
        let dim = self.dim();
        let hidden = self.hidden;
        let classes = self.classes();
        let mut params = Vec::with_capacity(self.num_parameters());
        let limit1 = (6.0f64 / (dim + hidden) as f64).sqrt() as f32;
        for _ in 0..hidden * dim {
            params.push(rng.gen_range(-limit1..limit1));
        }
        params.extend(std::iter::repeat_n(0.0f32, hidden));
        let limit2 = (6.0f64 / (hidden + classes) as f64).sqrt() as f32;
        for _ in 0..classes * hidden {
            params.push(rng.gen_range(-limit2..limit2));
        }
        params.extend(std::iter::repeat_n(0.0f32, classes));
        GradientVector::from_vec(params)
    }

    fn loss_and_gradient(&self, params: &[f32], examples: &[usize]) -> (f64, GradientVector) {
        assert_eq!(
            params.len(),
            self.num_parameters(),
            "parameter dimension mismatch"
        );
        assert!(!examples.is_empty(), "mini-batch must not be empty");
        let dim = self.dim();
        let hidden = self.hidden;
        let classes = self.classes();
        let m = examples.len() as f64;
        let w1 = &params[self.w1_offset()..self.b1_offset()];
        let w2 = &params[self.w2_offset()..self.b2_offset()];
        let _ = w1;

        let mut grad = vec![0.0f32; params.len()];
        let mut loss = 0.0f64;
        for &i in examples {
            let (h, probs) = self.forward(params, i);
            let label = self.data.label(i);
            loss -= probs[label].max(1e-12).ln();
            let x = self.data.features(i);

            // dL/dlogit_c = p_c - 1{c = label}
            let dlogits: Vec<f64> = (0..classes)
                .map(|c| (probs[c] - if c == label { 1.0 } else { 0.0 }) / m)
                .collect();

            // Output layer gradients.
            for c in 0..classes {
                let base = self.w2_offset() + c * hidden;
                for j in 0..hidden {
                    grad[base + j] += (dlogits[c] * h[j]) as f32;
                }
                grad[self.b2_offset() + c] += dlogits[c] as f32;
            }

            // Back-propagate into the hidden layer: dL/dh_j = Σ_c dlogit_c · W2[c,j],
            // then through tanh: dL/dpre_j = dL/dh_j · (1 - h_j²).
            for j in 0..hidden {
                let mut dh = 0.0f64;
                for c in 0..classes {
                    dh += dlogits[c] * w2[c * hidden + j] as f64;
                }
                let dpre = dh * (1.0 - h[j] * h[j]);
                let base = self.w1_offset() + j * dim;
                for (offset, &xj) in x.iter().enumerate() {
                    grad[base + offset] += (dpre * xj as f64) as f32;
                }
                grad[self.b1_offset() + j] += dpre as f32;
            }
        }
        (loss / m, GradientVector::from_vec(grad))
    }

    fn evaluate(&self, params: &[f32]) -> f64 {
        let all: Vec<usize> = (0..self.data.len()).collect();
        self.loss_and_gradient(params, &all).0
    }

    fn accuracy(&self, params: &[f32]) -> Option<f64> {
        if self.data.is_empty() {
            return Some(0.0);
        }
        let correct = (0..self.data.len())
            .filter(|&i| self.predict(params, i) == self.data.label(i))
            .count();
        Some(correct as f64 / self.data.len() as f64)
    }

    fn name(&self) -> &'static str {
        "mlp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> Mlp {
        Mlp::new(
            ClassificationDataset::gaussian_blobs(160, 8, 3, 4.0, 41),
            12,
        )
    }

    #[test]
    fn parameter_layout_adds_up() {
        let m = model();
        assert_eq!(m.num_parameters(), 12 * 8 + 12 + 3 * 12 + 3);
        assert_eq!(m.layer_sizes(), vec![12 * 8, 12, 3 * 12, 3]);
        assert_eq!(m.layer_sizes().iter().sum::<usize>(), m.num_parameters());
        assert_eq!(m.hidden(), 12);
        let params = m.initial_parameters(1);
        assert_eq!(params.len(), m.num_parameters());
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let m = model();
        let params = m.initial_parameters(2);
        let batch: Vec<usize> = (0..16).collect();
        let (_, grad) = m.loss_and_gradient(params.as_slice(), &batch);
        let h = 1e-3f32;
        // One coordinate from each parameter block.
        let probes = [0usize, 12 * 8 + 3, 12 * 8 + 12 + 5, m.num_parameters() - 1];
        for &j in &probes {
            let mut plus = params.clone();
            plus[j] += h;
            let mut minus = params.clone();
            minus[j] -= h;
            let numeric = (m.loss_and_gradient(plus.as_slice(), &batch).0
                - m.loss_and_gradient(minus.as_slice(), &batch).0)
                / (2.0 * h as f64);
            assert!(
                (grad[j] as f64 - numeric).abs() < 2e-3,
                "coordinate {j}: analytic {} vs numeric {numeric}",
                grad[j]
            );
        }
    }

    #[test]
    fn training_improves_accuracy() {
        let m = model();
        let mut params = m.initial_parameters(3);
        let all: Vec<usize> = (0..m.num_examples()).collect();
        let initial = m.evaluate(params.as_slice());
        for _ in 0..300 {
            let (_, grad) = m.loss_and_gradient(params.as_slice(), &all);
            params.axpy(-1.0, &grad);
        }
        let final_loss = m.evaluate(params.as_slice());
        assert!(
            final_loss < initial,
            "loss should decrease: {initial} -> {final_loss}"
        );
        assert!(m.accuracy(params.as_slice()).unwrap() > 0.85);
    }

    #[test]
    #[should_panic(expected = "hidden width")]
    fn rejects_zero_hidden() {
        Mlp::new(ClassificationDataset::gaussian_blobs(10, 4, 2, 1.0, 1), 0);
    }

    #[test]
    fn metadata() {
        let m = model();
        assert_eq!(m.name(), "mlp");
        assert_eq!(m.num_examples(), 160);
        let params = m.initial_parameters(4);
        assert!(m.predict(params.as_slice(), 0) < 3);
    }
}
