//! Elman recurrent network with backpropagation through time — the RNN-class
//! workload standing in for the paper's LSTM benchmarks.

use crate::dataset::SequenceDataset;
use crate::model::DifferentiableModel;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sidco_tensor::GradientVector;

/// A single-layer Elman RNN regressor:
///
/// `h_t = tanh(W_ih x_t + W_hh h_{t-1} + b_h)`, prediction `ŷ = w_o · h_T + b_o`,
/// trained with squared error against the sequence target.
///
/// Parameter layout (flat):
/// `[W_ih (hidden × input) | W_hh (hidden × hidden) | b_h (hidden) | w_o (hidden) | b_o]`.
///
/// # Example
///
/// ```
/// use sidco_models::dataset::SequenceDataset;
/// use sidco_models::rnn::ElmanRnn;
/// use sidco_models::DifferentiableModel;
///
/// let data = SequenceDataset::generate(16, 8, 2, 1);
/// let model = ElmanRnn::new(data, 6);
/// assert_eq!(model.num_parameters(), 6 * 2 + 6 * 6 + 6 + 6 + 1);
/// ```
#[derive(Debug, Clone)]
pub struct ElmanRnn {
    data: SequenceDataset,
    hidden: usize,
}

impl ElmanRnn {
    /// Wraps a sequence dataset with the given hidden-state width.
    ///
    /// # Panics
    ///
    /// Panics if `hidden == 0`.
    pub fn new(data: SequenceDataset, hidden: usize) -> Self {
        assert!(hidden > 0, "hidden width must be positive");
        Self { data, hidden }
    }

    /// Hidden-state width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    fn input_dim(&self) -> usize {
        self.data.input_dim()
    }

    fn wih_offset(&self) -> usize {
        0
    }
    fn whh_offset(&self) -> usize {
        self.hidden * self.input_dim()
    }
    fn bh_offset(&self) -> usize {
        self.whh_offset() + self.hidden * self.hidden
    }
    fn wo_offset(&self) -> usize {
        self.bh_offset() + self.hidden
    }
    fn bo_offset(&self) -> usize {
        self.wo_offset() + self.hidden
    }

    /// Runs the forward pass for one sequence, returning the per-step hidden states
    /// (including the initial zero state at index 0) and the prediction.
    fn forward(&self, params: &[f32], sequence: usize) -> (Vec<Vec<f64>>, f64) {
        let hidden = self.hidden;
        let input = self.input_dim();
        let w_ih = &params[self.wih_offset()..self.whh_offset()];
        let w_hh = &params[self.whh_offset()..self.bh_offset()];
        let b_h = &params[self.bh_offset()..self.wo_offset()];
        let w_o = &params[self.wo_offset()..self.bo_offset()];
        let b_o = params[self.bo_offset()] as f64;

        let mut states: Vec<Vec<f64>> = Vec::with_capacity(self.data.seq_len() + 1);
        states.push(vec![0.0; hidden]);
        for t in 0..self.data.seq_len() {
            let x = self.data.step(sequence, t);
            let prev = &states[t];
            let mut next = vec![0.0f64; hidden];
            for (j, nj) in next.iter_mut().enumerate() {
                let mut pre = b_h[j] as f64;
                let row_ih = &w_ih[j * input..(j + 1) * input];
                for (&w, &xi) in row_ih.iter().zip(x) {
                    pre += (w * xi) as f64;
                }
                let row_hh = &w_hh[j * hidden..(j + 1) * hidden];
                for (&w, &hp) in row_hh.iter().zip(prev) {
                    pre += w as f64 * hp;
                }
                *nj = pre.tanh();
            }
            states.push(next);
        }
        // INVARIANT: states starts seeded with the initial hidden state.
        let last = states.last().expect("at least the initial state");
        let prediction = w_o
            .iter()
            .zip(last)
            .map(|(&w, &h)| w as f64 * h)
            .sum::<f64>()
            + b_o;
        (states, prediction)
    }

    /// Prediction for one sequence.
    pub fn predict(&self, params: &[f32], sequence: usize) -> f64 {
        self.forward(params, sequence).1
    }
}

impl DifferentiableModel for ElmanRnn {
    fn num_parameters(&self) -> usize {
        self.hidden * self.input_dim() + self.hidden * self.hidden + self.hidden + self.hidden + 1
    }

    fn layer_sizes(&self) -> Vec<usize> {
        vec![
            self.hidden * self.input_dim(),
            self.hidden * self.hidden,
            self.hidden,
            self.hidden,
            1,
        ]
    }

    fn num_examples(&self) -> usize {
        self.data.len()
    }

    fn initial_parameters(&self, seed: u64) -> GradientVector {
        let mut rng = SmallRng::seed_from_u64(seed);
        let limit = (1.0f64 / self.hidden as f64).sqrt() as f32;
        GradientVector::from_vec(
            (0..self.num_parameters())
                .map(|_| rng.gen_range(-limit..limit))
                .collect(),
        )
    }

    fn loss_and_gradient(&self, params: &[f32], examples: &[usize]) -> (f64, GradientVector) {
        assert_eq!(
            params.len(),
            self.num_parameters(),
            "parameter dimension mismatch"
        );
        assert!(!examples.is_empty(), "mini-batch must not be empty");
        let hidden = self.hidden;
        let input = self.input_dim();
        let seq_len = self.data.seq_len();
        let m = examples.len() as f64;
        let w_hh = &params[self.whh_offset()..self.bh_offset()];
        let w_o = &params[self.wo_offset()..self.bo_offset()];

        let mut grad = vec![0.0f32; params.len()];
        let mut loss = 0.0f64;
        for &i in examples {
            let (states, prediction) = self.forward(params, i);
            let target = self.data.target(i) as f64;
            let err = prediction - target;
            loss += 0.5 * err * err;
            let derr = err / m;

            // Output layer.
            let last = &states[seq_len];
            for j in 0..hidden {
                grad[self.wo_offset() + j] += (derr * last[j]) as f32;
            }
            grad[self.bo_offset()] += derr as f32;

            // Backpropagation through time: dL/dh_T = derr * w_o.
            let mut dh: Vec<f64> = w_o.iter().map(|&w| derr * w as f64).collect();
            for t in (0..seq_len).rev() {
                let h_t = &states[t + 1];
                let h_prev = &states[t];
                let x = self.data.step(i, t);
                // Through the tanh.
                let dpre: Vec<f64> = dh
                    .iter()
                    .zip(h_t)
                    .map(|(&d, &h)| d * (1.0 - h * h))
                    .collect();
                for j in 0..hidden {
                    let base_ih = self.wih_offset() + j * input;
                    for (offset, &xj) in x.iter().enumerate() {
                        grad[base_ih + offset] += (dpre[j] * xj as f64) as f32;
                    }
                    let base_hh = self.whh_offset() + j * hidden;
                    for (offset, &hp) in h_prev.iter().enumerate() {
                        grad[base_hh + offset] += (dpre[j] * hp) as f32;
                    }
                    grad[self.bh_offset() + j] += dpre[j] as f32;
                }
                // Propagate to the previous hidden state: dh_prev = W_hhᵀ dpre.
                let mut dh_prev = vec![0.0f64; hidden];
                for (j, &d) in dpre.iter().enumerate() {
                    let row = &w_hh[j * hidden..(j + 1) * hidden];
                    for (p, dh_p) in dh_prev.iter_mut().enumerate() {
                        *dh_p += row[p] as f64 * d;
                    }
                }
                dh = dh_prev;
            }
        }
        (loss / m, GradientVector::from_vec(grad))
    }

    fn evaluate(&self, params: &[f32]) -> f64 {
        let all: Vec<usize> = (0..self.data.len()).collect();
        self.loss_and_gradient(params, &all).0
    }

    fn name(&self) -> &'static str {
        "elman-rnn"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ElmanRnn {
        ElmanRnn::new(SequenceDataset::generate(60, 10, 3, 51), 8)
    }

    #[test]
    fn parameter_layout_adds_up() {
        let m = model();
        assert_eq!(m.num_parameters(), 8 * 3 + 8 * 8 + 8 + 8 + 1);
        assert_eq!(m.layer_sizes(), vec![8 * 3, 8 * 8, 8, 8, 1]);
        assert_eq!(m.layer_sizes().iter().sum::<usize>(), m.num_parameters());
        assert_eq!(m.hidden(), 8);
        assert_eq!(m.initial_parameters(1).len(), m.num_parameters());
    }

    #[test]
    fn gradient_matches_finite_differences_through_time() {
        let m = model();
        let params = m.initial_parameters(2);
        let batch: Vec<usize> = (0..8).collect();
        let (_, grad) = m.loss_and_gradient(params.as_slice(), &batch);
        let h = 1e-3f32;
        // Probe one coordinate in each block: W_ih, W_hh, b_h, w_o, b_o.
        let probes = [
            1usize,
            8 * 3 + 5,
            8 * 3 + 8 * 8 + 2,
            8 * 3 + 8 * 8 + 8 + 4,
            m.num_parameters() - 1,
        ];
        for &j in &probes {
            let mut plus = params.clone();
            plus[j] += h;
            let mut minus = params.clone();
            minus[j] -= h;
            let numeric = (m.loss_and_gradient(plus.as_slice(), &batch).0
                - m.loss_and_gradient(minus.as_slice(), &batch).0)
                / (2.0 * h as f64);
            assert!(
                (grad[j] as f64 - numeric).abs() < 2e-3,
                "coordinate {j}: analytic {} vs numeric {numeric}",
                grad[j]
            );
        }
    }

    #[test]
    fn training_reduces_loss() {
        let m = model();
        let mut params = m.initial_parameters(3);
        let all: Vec<usize> = (0..m.num_examples()).collect();
        let initial = m.evaluate(params.as_slice());
        for _ in 0..200 {
            let (_, grad) = m.loss_and_gradient(params.as_slice(), &all);
            params.axpy(-0.5, &grad);
        }
        let final_loss = m.evaluate(params.as_slice());
        assert!(
            final_loss < initial * 0.6,
            "BPTT training should reduce the loss: {initial} -> {final_loss}"
        );
    }

    #[test]
    fn prediction_depends_on_sequence_order() {
        // The target is a decayed moving average, so the recurrent state matters;
        // two different sequences should (generically) yield different predictions.
        let m = model();
        let params = m.initial_parameters(4);
        let p0 = m.predict(params.as_slice(), 0);
        let p1 = m.predict(params.as_slice(), 1);
        assert!((p0 - p1).abs() > 1e-9);
    }

    #[test]
    #[should_panic(expected = "hidden width")]
    fn rejects_zero_hidden() {
        ElmanRnn::new(SequenceDataset::generate(4, 4, 2, 1), 0);
    }

    #[test]
    fn metadata() {
        let m = model();
        assert_eq!(m.name(), "elman-rnn");
        assert_eq!(m.num_examples(), 60);
        assert!(m.accuracy(&vec![0.0; m.num_parameters()]).is_none());
    }
}
