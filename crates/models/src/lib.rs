//! Workloads for the SIDCo experiments.
//!
//! The paper evaluates gradient compression on six DNN benchmarks (Table 1) trained
//! on real datasets with PyTorch. Neither the datasets (ImageNet, PTB, AN4) nor the
//! GPU cluster are available to this reproduction, so this crate supplies two kinds
//! of substitutes that exercise exactly the same compressor code paths:
//!
//! * [`benchmarks`] — the Table-1 specifications (parameter counts, batch sizes,
//!   learning rates, communication-overhead fractions) used by the distributed
//!   simulator to size gradients and the network cost model;
//! * [`synthetic`] — a gradient generator that produces vectors whose marginal
//!   distribution and sparsity evolution match what the paper observed on real
//!   training runs (compressible, SID-shaped, sparser at later iterations);
//! * real, analytically differentiable models trained end-to-end by the simulator:
//!   [`regression`] (linear least squares), [`logistic`] (softmax classification),
//!   [`mlp`] (one-hidden-layer network) and [`rnn`] (Elman recurrent network for a
//!   synthetic sequence task), each with hand-written backprop over the synthetic
//!   datasets in [`dataset`].
//!
//! # Example
//!
//! ```
//! use sidco_models::benchmarks::BenchmarkId;
//! use sidco_models::synthetic::{GradientProfile, SyntheticGradientGenerator};
//!
//! let spec = BenchmarkId::Vgg16Cifar10.spec();
//! assert_eq!(spec.parameters, 14_982_987);
//!
//! let mut gen = SyntheticGradientGenerator::new(10_000, GradientProfile::LaplaceLike, 7);
//! let g = gen.gradient(100);
//! assert_eq!(g.len(), 10_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchmarks;
pub mod dataset;
pub mod logistic;
pub mod mlp;
pub mod model;
pub mod regression;
pub mod rnn;
pub mod synthetic;

pub use benchmarks::{BenchmarkId, BenchmarkSpec};
pub use model::DifferentiableModel;
pub use synthetic::{GradientProfile, SyntheticGradientGenerator};
