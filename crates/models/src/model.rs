//! The [`DifferentiableModel`] trait implemented by every trainable workload.

use sidco_tensor::GradientVector;

/// A model that the distributed-SGD simulator can train.
///
/// The trait deliberately mirrors what a data-parallel framework sees: given the
/// current flat parameter vector and a mini-batch of example indices, produce the
/// mini-batch loss and the flat gradient. Implementations own their (synthetic)
/// dataset, so a worker only needs its shard of example indices.
pub trait DifferentiableModel: Send + Sync {
    /// Total number of trainable parameters (the gradient dimension `d`).
    fn num_parameters(&self) -> usize;

    /// Sizes of the model's consecutive parameter tensors (layers), in flat
    /// parameter order. Must be non-empty, all-positive, and sum to
    /// [`num_parameters`](Self::num_parameters). The distributed trainer uses
    /// these shapes to lay gradient buckets out along real layer boundaries.
    /// Defaults to a single layer covering every parameter.
    fn layer_sizes(&self) -> Vec<usize> {
        vec![self.num_parameters()]
    }

    /// Relative backward-pass cost of each layer, aligned with
    /// [`layer_sizes`](Self::layer_sizes) (same length, all positive). Only
    /// the *ratios* matter: the distributed simulator normalises the weights
    /// against its modelled backward-pass duration to derive the time at
    /// which each layer's gradient becomes available. The backward pass runs
    /// output-to-input, so the **last** layer's gradient materialises first
    /// and layer 0's last. Defaults to flop-proportional weights (one unit of
    /// backward work per parameter), which is exact for the dense blocks all
    /// bundled workloads are built from.
    fn layer_backward_costs(&self) -> Vec<f64> {
        self.layer_sizes().iter().map(|&s| s as f64).collect()
    }

    /// Number of training examples in the dataset.
    fn num_examples(&self) -> usize;

    /// Deterministic parameter initialisation.
    fn initial_parameters(&self, seed: u64) -> GradientVector;

    /// Mini-batch loss and gradient at `params` over the given example indices.
    ///
    /// # Panics
    ///
    /// Implementations panic if `params.len() != num_parameters()` or an example
    /// index is out of range.
    fn loss_and_gradient(&self, params: &[f32], examples: &[usize]) -> (f64, GradientVector);

    /// Evaluation metric over the full dataset (by convention: the mean loss, so
    /// "lower is better" uniformly across workloads). Used for the
    /// loss-vs-time/iteration curves of Figures 4 and 10.
    fn evaluate(&self, params: &[f32]) -> f64;

    /// Optional accuracy-style metric in `[0, 1]` ("higher is better"), for the
    /// workloads where the paper reports top-1 accuracy. Defaults to `None`.
    fn accuracy(&self, _params: &[f32]) -> Option<f64> {
        None
    }

    /// Short name used in reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Constant;

    impl DifferentiableModel for Constant {
        fn num_parameters(&self) -> usize {
            1
        }
        fn num_examples(&self) -> usize {
            1
        }
        fn initial_parameters(&self, _seed: u64) -> GradientVector {
            GradientVector::zeros(1)
        }
        fn loss_and_gradient(&self, params: &[f32], _examples: &[usize]) -> (f64, GradientVector) {
            (params[0] as f64, GradientVector::from_vec(vec![1.0]))
        }
        fn evaluate(&self, params: &[f32]) -> f64 {
            params[0] as f64
        }
        fn name(&self) -> &'static str {
            "constant"
        }
    }

    #[test]
    fn default_accuracy_is_none_and_trait_is_object_safe() {
        let model: Box<dyn DifferentiableModel> = Box::new(Constant);
        assert_eq!(model.accuracy(&[0.0]), None);
        assert_eq!(model.layer_sizes(), vec![1]);
        assert_eq!(model.layer_backward_costs(), vec![1.0]);
        assert_eq!(model.name(), "constant");
        let (loss, grad) = model.loss_and_gradient(&[2.0], &[0]);
        assert_eq!(loss, 2.0);
        assert_eq!(grad.len(), 1);
    }
}
