//! Synthetic gradient generation calibrated to the paper's observations.
//!
//! The paper establishes two empirical properties of real DNN gradients:
//!
//! 1. **Compressibility** (Property 1, Figure 7): sorted magnitudes decay like a
//!    power law with exponent above 0.5;
//! 2. **SID shape** (Property 2, Figure 2/8): the marginal distribution is well
//!    approximated by a double exponential / double gamma / double generalized
//!    Pareto whose sparsity increases (tail gets lighter in absolute scale, mass
//!    concentrates near zero) as training progresses.
//!
//! [`SyntheticGradientGenerator`] reproduces both: each call draws an i.i.d. vector
//! from a chosen signed SID whose scale decays with the iteration number (mimicking
//! the shrinking gradient norm) and whose shape drifts toward a sparser profile.
//! This is the stand-in for "run PyTorch and collect the gradient" everywhere the
//! experiments only care about the gradient's statistics rather than the loss
//! surface.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sidco_stats::distribution::Continuous;
use sidco_stats::{DoubleGamma, DoubleGeneralizedPareto, Laplace, Normal};
use sidco_tensor::GradientVector;

/// The marginal-distribution family the generator draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GradientProfile {
    /// Double exponential (Laplace) gradients — the best case for SIDCo-E.
    LaplaceLike,
    /// Double-gamma gradients with shape < 1 — sparser than Laplace, the profile the
    /// paper observes late in training.
    SparseGamma,
    /// Double generalized-Pareto gradients — heavier tails, the stress case for
    /// single-stage estimators.
    HeavyTail,
    /// Gaussian gradients — lighter tails than any SID; included so experiments can
    /// show when the Gaussian-based baselines *do* work.
    Gaussian,
}

impl GradientProfile {
    /// All profiles, for sweep-style experiments.
    pub const ALL: [GradientProfile; 4] = [
        GradientProfile::LaplaceLike,
        GradientProfile::SparseGamma,
        GradientProfile::HeavyTail,
        GradientProfile::Gaussian,
    ];
}

impl std::fmt::Display for GradientProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            GradientProfile::LaplaceLike => "laplace",
            GradientProfile::SparseGamma => "sparse-gamma",
            GradientProfile::HeavyTail => "heavy-tail",
            GradientProfile::Gaussian => "gaussian",
        };
        f.write_str(s)
    }
}

/// Deterministic synthetic gradient source.
///
/// # Example
///
/// ```
/// use sidco_models::synthetic::{GradientProfile, SyntheticGradientGenerator};
///
/// let mut gen = SyntheticGradientGenerator::new(50_000, GradientProfile::LaplaceLike, 42);
/// let early = gen.gradient(100);
/// let late = gen.gradient(10_000);
/// // The gradient scale shrinks as training progresses.
/// assert!(late.l2_norm() < early.l2_norm());
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticGradientGenerator {
    dim: usize,
    profile: GradientProfile,
    rng: SmallRng,
    seed: u64,
    base_scale: f64,
}

impl SyntheticGradientGenerator {
    /// Creates a generator for gradients of dimension `dim` with the given profile
    /// and RNG seed. The base scale (0.01) matches the magnitude range seen in the
    /// paper's Figure 2 histograms of ℓ2-normalised ResNet-20 gradients.
    pub fn new(dim: usize, profile: GradientProfile, seed: u64) -> Self {
        Self {
            dim,
            profile,
            rng: SmallRng::seed_from_u64(seed),
            seed,
            base_scale: 0.01,
        }
    }

    /// Overrides the base scale of the generated gradients.
    pub fn with_base_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0 && scale.is_finite(), "scale must be positive");
        self.base_scale = scale;
        self
    }

    /// Gradient dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The configured profile.
    pub fn profile(&self) -> GradientProfile {
        self.profile
    }

    /// Resets the RNG stream so the same sequence of gradients can be replayed.
    pub fn reset(&mut self) {
        self.rng = SmallRng::seed_from_u64(self.seed);
    }

    /// The gradient scale at a given iteration: an exponential-ish decay
    /// `scale₀ / (1 + i/2000)^0.4` that reproduces the norm shrinkage between the
    /// paper's iteration-100 and iteration-10000 snapshots (roughly 2–3× smaller).
    pub fn scale_at(&self, iteration: u64) -> f64 {
        self.base_scale / (1.0 + iteration as f64 / 2000.0).powf(0.4)
    }

    /// The distribution shape parameter at a given iteration (only meaningful for
    /// the gamma/GP profiles): drifts from ~0.9 toward ~0.55, i.e. sparser over time.
    pub fn shape_at(&self, iteration: u64) -> f64 {
        let progress = (iteration as f64 / 20_000.0).min(1.0);
        0.9 - 0.35 * progress
    }

    /// Generates the gradient for the given training iteration.
    pub fn gradient(&mut self, iteration: u64) -> GradientVector {
        let scale = self.scale_at(iteration);
        let data: Vec<f32> = match self.profile {
            GradientProfile::LaplaceLike => {
                // INVARIANT: scale_at returns strictly positive scales.
                let d = Laplace::new(0.0, scale).expect("valid scale");
                (0..self.dim)
                    .map(|_| d.sample(&mut self.rng) as f32)
                    .collect()
            }
            GradientProfile::SparseGamma => {
                let shape = self.shape_at(iteration);
                // INVARIANT: shape_at and scale_at are strictly positive.
                let d = DoubleGamma::new(shape, scale / shape).expect("valid parameters");
                (0..self.dim)
                    .map(|_| d.sample(&mut self.rng) as f32)
                    .collect()
            }
            GradientProfile::HeavyTail => {
                // INVARIANT: scale_at returns strictly positive scales.
                let d = DoubleGeneralizedPareto::new(0.25, scale).expect("valid parameters");
                (0..self.dim)
                    .map(|_| d.sample(&mut self.rng) as f32)
                    .collect()
            }
            GradientProfile::Gaussian => {
                // INVARIANT: scale_at returns strictly positive scales.
                let d = Normal::new(0.0, scale).expect("valid scale");
                (0..self.dim)
                    .map(|_| d.sample(&mut self.rng) as f32)
                    .collect()
            }
        };
        GradientVector::from_vec(data)
    }

    /// Generates a batch of per-worker gradients for the same iteration: every
    /// worker sees the same distribution but different noise, as in data-parallel
    /// training with i.i.d. shards.
    pub fn worker_gradients(&mut self, iteration: u64, workers: usize) -> Vec<GradientVector> {
        (0..workers).map(|_| self.gradient(iteration)).collect()
    }

    /// Generates a gradient composed of `layers` contiguous blocks whose scales are
    /// log-spaced over three orders of magnitude, emulating the per-layer magnitude
    /// disparity of real DNNs (convolution kernels vs biases vs normalisation
    /// parameters). This disparity is what gives real gradient vectors their
    /// power-law sorted-magnitude profile (Property 1 / Figure 7 of the paper), so
    /// the compressibility experiments use this mode.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is zero or exceeds the gradient dimension.
    pub fn layered_gradient(&mut self, iteration: u64, layers: usize) -> GradientVector {
        assert!(
            layers > 0 && layers <= self.dim,
            "layers must be in 1..=dim, got {layers}"
        );
        let mut g = self.gradient(iteration);
        let slice = g.as_mut_slice();
        let block = slice.len().div_ceil(layers);
        for (layer, chunk) in slice.chunks_mut(block).enumerate() {
            // Log-spaced multipliers from 1.0 down to 1e-3.
            let t = if layers > 1 {
                layer as f64 / (layers - 1) as f64
            } else {
                0.0
            };
            let multiplier = 10f64.powf(-3.0 * t) as f32;
            for value in chunk.iter_mut() {
                *value *= multiplier;
            }
        }
        g
    }

    /// Generates a gradient with an explicit fraction of exact zeros, emulating
    /// layers (e.g. embedding tables) whose gradient is structurally sparse.
    pub fn gradient_with_zeros(&mut self, iteration: u64, zero_fraction: f64) -> GradientVector {
        assert!((0.0..1.0).contains(&zero_fraction));
        let mut g = self.gradient(iteration);
        let slice = g.as_mut_slice();
        for value in slice.iter_mut() {
            if self.rng.gen::<f64>() < zero_fraction {
                *value = 0.0;
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sidco_stats::fit::{fit_sid, SidKind};
    use sidco_tensor::compressibility;

    #[test]
    fn generates_requested_dimension_and_is_deterministic() {
        let mut a = SyntheticGradientGenerator::new(5_000, GradientProfile::LaplaceLike, 1);
        let mut b = SyntheticGradientGenerator::new(5_000, GradientProfile::LaplaceLike, 1);
        let ga = a.gradient(10);
        let gb = b.gradient(10);
        assert_eq!(ga.len(), 5_000);
        assert_eq!(ga.as_slice(), gb.as_slice());
        // Different seeds differ.
        let mut c = SyntheticGradientGenerator::new(5_000, GradientProfile::LaplaceLike, 2);
        assert_ne!(ga.as_slice(), c.gradient(10).as_slice());
    }

    #[test]
    fn reset_replays_the_stream() {
        let mut g = SyntheticGradientGenerator::new(1_000, GradientProfile::SparseGamma, 3);
        let first = g.gradient(0);
        g.reset();
        let replay = g.gradient(0);
        assert_eq!(first.as_slice(), replay.as_slice());
    }

    #[test]
    fn scale_decays_and_shape_sparsifies_over_iterations() {
        let g = SyntheticGradientGenerator::new(10, GradientProfile::SparseGamma, 4);
        assert!(g.scale_at(10_000) < g.scale_at(100));
        assert!(g.shape_at(20_000) < g.shape_at(0));
        assert!(g.shape_at(100_000) >= 0.5);
    }

    #[test]
    fn generated_gradients_are_compressible() {
        // Property 1 must hold for the synthetic stand-in, otherwise the
        // compressibility experiments would be meaningless.
        for profile in [
            GradientProfile::LaplaceLike,
            GradientProfile::SparseGamma,
            GradientProfile::HeavyTail,
        ] {
            let mut generator = SyntheticGradientGenerator::new(50_000, profile, 5);
            let grad = generator.gradient(1_000);
            let report = compressibility::analyze(grad.as_slice(), 0.3);
            // i.i.d. Laplace captures ~59% of the energy in its top decile (residual
            // ≈ 0.64); the sparser gamma/GP profiles do considerably better. Use a
            // bound that admits the Laplace case but rejects flat spectra (≈ 0.95).
            assert!(
                report.relative_sparsification_error(grad.len() / 10) < 0.75,
                "{profile}: top-10% should capture most of the energy"
            );
        }
    }

    #[test]
    fn laplace_profile_is_well_fit_by_exponential_sid() {
        let mut generator =
            SyntheticGradientGenerator::new(100_000, GradientProfile::LaplaceLike, 6);
        let grad = generator.gradient(500);
        let (fit, moments) = fit_sid(grad.as_slice(), SidKind::Exponential).unwrap();
        // The fitted scale should match the generator's configured scale.
        let expected = generator.scale_at(500);
        match fit {
            sidco_stats::fit::FittedSid::Exponential { scale } => {
                assert!((scale - expected).abs() / expected < 0.05);
            }
            other => panic!("unexpected fit {other:?}"),
        }
        assert_eq!(moments.count, 100_000);
    }

    #[test]
    fn worker_gradients_differ_across_workers() {
        let mut generator = SyntheticGradientGenerator::new(2_000, GradientProfile::LaplaceLike, 7);
        let grads = generator.worker_gradients(50, 4);
        assert_eq!(grads.len(), 4);
        assert_ne!(grads[0].as_slice(), grads[1].as_slice());
        // Same scale though: norms are comparable.
        let n0 = grads[0].l2_norm();
        let n1 = grads[1].l2_norm();
        assert!((n0 - n1).abs() / n0 < 0.2);
    }

    #[test]
    fn layered_gradient_is_power_law_compressible() {
        // Property 1: with per-layer scale disparity the sorted magnitudes follow a
        // power law with exponent above 1/2 (the condition of Definition 1).
        let mut generator =
            SyntheticGradientGenerator::new(60_000, GradientProfile::SparseGamma, 19);
        let grad = generator.layered_gradient(100, 24);
        let report = compressibility::analyze(grad.as_slice(), 0.4);
        assert!(
            report.decay_exponent > 0.5,
            "decay exponent {} should exceed 1/2",
            report.decay_exponent
        );
        assert!(report.is_compressible());
        // Layer structure preserves the dimension and determinism.
        assert_eq!(grad.len(), 60_000);
        let mut replay = SyntheticGradientGenerator::new(60_000, GradientProfile::SparseGamma, 19);
        assert_eq!(replay.layered_gradient(100, 24).as_slice(), grad.as_slice());
    }

    #[test]
    #[should_panic(expected = "layers must be")]
    fn layered_gradient_rejects_zero_layers() {
        let mut generator = SyntheticGradientGenerator::new(100, GradientProfile::LaplaceLike, 1);
        generator.layered_gradient(0, 0);
    }

    #[test]
    fn zero_injection_produces_requested_sparsity() {
        let mut generator =
            SyntheticGradientGenerator::new(20_000, GradientProfile::LaplaceLike, 8);
        let g = generator.gradient_with_zeros(10, 0.5);
        let zero_fraction = g.count_zeros() as f64 / g.len() as f64;
        assert!((zero_fraction - 0.5).abs() < 0.05);
    }

    #[test]
    fn display_labels() {
        assert_eq!(GradientProfile::LaplaceLike.to_string(), "laplace");
        assert_eq!(GradientProfile::ALL.len(), 4);
    }
}
