//! The benchmark matrix of Table 1 in the paper.

/// Task category of a benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// Word-level language modelling (LSTM on PTB).
    LanguageModeling,
    /// Speech recognition (LSTM on AN4).
    SpeechRecognition,
    /// Image classification (CNNs on CIFAR-10 / ImageNet).
    ImageClassification,
}

/// Local optimizer used by a benchmark (Table 1's "Local Optimizer" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OptimizerKind {
    /// Vanilla SGD.
    Sgd,
    /// SGD with Nesterov momentum.
    NesterovMomentumSgd,
}

/// Identifier of one of the six benchmarks in Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BenchmarkId {
    /// 2-layer LSTM (1500 hidden units) on the Penn Treebank corpus.
    LstmPtb,
    /// 5-layer LSTM (1024 hidden units) on the AN4 speech corpus.
    LstmAn4,
    /// ResNet-20 on CIFAR-10.
    ResNet20Cifar10,
    /// VGG16 on CIFAR-10.
    Vgg16Cifar10,
    /// ResNet-50 on ImageNet.
    ResNet50ImageNet,
    /// VGG19 on ImageNet.
    Vgg19ImageNet,
}

impl BenchmarkId {
    /// All benchmarks, in the order Table 1 lists them.
    pub const ALL: [BenchmarkId; 6] = [
        BenchmarkId::LstmPtb,
        BenchmarkId::LstmAn4,
        BenchmarkId::ResNet20Cifar10,
        BenchmarkId::Vgg16Cifar10,
        BenchmarkId::ResNet50ImageNet,
        BenchmarkId::Vgg19ImageNet,
    ];

    /// The full specification row for this benchmark.
    pub fn spec(&self) -> BenchmarkSpec {
        match self {
            BenchmarkId::LstmPtb => BenchmarkSpec {
                id: *self,
                name: "LSTM-PTB",
                task: TaskKind::LanguageModeling,
                model: "2-layer LSTM, 1500 hidden units",
                dataset: "Penn Treebank",
                parameters: 66_034_000,
                per_worker_batch: 20,
                learning_rate: 22.0,
                epochs: 30,
                communication_overhead: 0.94,
                optimizer: OptimizerKind::NesterovMomentumSgd,
                quality_metric: "test perplexity",
                iterations_per_epoch: 1_327,
            },
            BenchmarkId::LstmAn4 => BenchmarkSpec {
                id: *self,
                name: "LSTM-AN4",
                task: TaskKind::SpeechRecognition,
                model: "5-layer LSTM, 1024 hidden units",
                dataset: "AN4",
                parameters: 43_476_256,
                per_worker_batch: 20,
                learning_rate: 0.004,
                epochs: 150,
                communication_overhead: 0.80,
                optimizer: OptimizerKind::NesterovMomentumSgd,
                quality_metric: "WER & CER",
                iterations_per_epoch: 6,
            },
            BenchmarkId::ResNet20Cifar10 => BenchmarkSpec {
                id: *self,
                name: "ResNet20-CIFAR10",
                task: TaskKind::ImageClassification,
                model: "ResNet-20",
                dataset: "CIFAR-10",
                parameters: 269_467,
                per_worker_batch: 512,
                learning_rate: 0.1,
                epochs: 140,
                communication_overhead: 0.10,
                optimizer: OptimizerKind::Sgd,
                quality_metric: "top-1 accuracy",
                iterations_per_epoch: 13,
            },
            BenchmarkId::Vgg16Cifar10 => BenchmarkSpec {
                id: *self,
                name: "VGG16-CIFAR10",
                task: TaskKind::ImageClassification,
                model: "VGG16",
                dataset: "CIFAR-10",
                parameters: 14_982_987,
                per_worker_batch: 512,
                learning_rate: 0.1,
                epochs: 140,
                communication_overhead: 0.60,
                optimizer: OptimizerKind::Sgd,
                quality_metric: "top-1 accuracy",
                iterations_per_epoch: 13,
            },
            BenchmarkId::ResNet50ImageNet => BenchmarkSpec {
                id: *self,
                name: "ResNet50-ImageNet",
                task: TaskKind::ImageClassification,
                model: "ResNet-50",
                dataset: "ImageNet",
                parameters: 25_559_081,
                per_worker_batch: 160,
                learning_rate: 0.2,
                epochs: 90,
                communication_overhead: 0.72,
                optimizer: OptimizerKind::NesterovMomentumSgd,
                quality_metric: "top-1 accuracy",
                iterations_per_epoch: 1_001,
            },
            BenchmarkId::Vgg19ImageNet => BenchmarkSpec {
                id: *self,
                name: "VGG19-ImageNet",
                task: TaskKind::ImageClassification,
                model: "VGG19",
                dataset: "ImageNet",
                parameters: 143_671_337,
                per_worker_batch: 160,
                learning_rate: 0.05,
                epochs: 90,
                communication_overhead: 0.83,
                optimizer: OptimizerKind::NesterovMomentumSgd,
                quality_metric: "top-1 accuracy",
                iterations_per_epoch: 1_001,
            },
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.spec().name)
    }
}

/// One row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchmarkSpec {
    /// Which benchmark this row describes.
    pub id: BenchmarkId,
    /// Human-readable name (e.g. `"VGG16-CIFAR10"`).
    pub name: &'static str,
    /// Task category.
    pub task: TaskKind,
    /// Model description.
    pub model: &'static str,
    /// Dataset name.
    pub dataset: &'static str,
    /// Number of trainable parameters (the gradient dimension `d`).
    pub parameters: usize,
    /// Per-worker mini-batch size.
    pub per_worker_batch: usize,
    /// Base learning rate.
    pub learning_rate: f64,
    /// Number of training epochs.
    pub epochs: usize,
    /// Fraction of the no-compression iteration time spent in communication
    /// (Table 1's "Comm Overhead" column). Drives the simulator's network model.
    pub communication_overhead: f64,
    /// Local optimizer.
    pub optimizer: OptimizerKind,
    /// Quality metric the paper reports for this benchmark.
    pub quality_metric: &'static str,
    /// Approximate number of iterations per epoch on 8 workers (dataset size /
    /// (workers × per-worker batch)), used to scale the simulated runs.
    pub iterations_per_epoch: usize,
}

impl BenchmarkSpec {
    /// Gradient size in bytes assuming 32-bit floats.
    pub fn gradient_bytes(&self) -> usize {
        self.parameters * std::mem::size_of::<f32>()
    }

    /// A deterministic, plausible per-tensor decomposition of the model's
    /// parameters, in flat parameter order (layers nearest the input first,
    /// the same convention as `DifferentiableModel::layer_sizes`).
    /// The reproduction has no PyTorch graphs to read shapes from, so this
    /// synthesises the profile each architecture family exhibits — CNNs: conv
    /// tensors growing geometrically into a few huge classifier tensors;
    /// LSTMs: a handful of enormous gate matrices each paired with a small
    /// bias. Sizes are all positive and sum exactly to
    /// [`parameters`](Self::parameters), so the result is a valid
    /// layer layout for the distributed trainer's bucket policies.
    pub fn representative_layer_sizes(&self) -> Vec<usize> {
        // (tensor count, geometric growth per tensor) per architecture
        // family. The count is capped by the parameter total so hand-built
        // tiny specs still get a valid (if degenerate) decomposition.
        let (tensors, growth) = match self.task {
            // Conv stacks: ~2 tensors per conv block, growing toward the head.
            TaskKind::ImageClassification => (24usize, 1.45f64),
            // Stacked LSTMs: few tensors, nearly flat sizes.
            TaskKind::LanguageModeling => (8usize, 1.1f64),
            TaskKind::SpeechRecognition => (12usize, 1.15f64),
        };
        let tensors = tensors.min(self.parameters.max(1));
        let weights: Vec<f64> = (0..tensors).map(|i| growth.powi(i as i32)).collect();
        let total_weight: f64 = weights.iter().sum();
        let mut sizes: Vec<usize> = weights
            .iter()
            .map(|w| {
                ((w / total_weight) * self.parameters as f64)
                    .floor()
                    .max(1.0) as usize
            })
            .collect();
        // Reconcile rounding: give any shortfall to the largest (last)
        // tensor; reclaim any excess (the 1-element floors can overshoot on
        // tiny hand-built specs) from the largest tensors, never below 1.
        let assigned: usize = sizes.iter().sum();
        if assigned <= self.parameters {
            // INVARIANT: every benchmark spec declares at least one tensor.
            *sizes.last_mut().expect("at least one tensor") += self.parameters - assigned;
        } else {
            let mut excess = assigned - self.parameters;
            while excess > 0 {
                let largest = (0..sizes.len())
                    .max_by_key(|&i| sizes[i])
                    // INVARIANT: every benchmark spec declares at least one
                    // tensor.
                    .expect("at least one tensor");
                let take = excess.min(sizes[largest] - 1);
                debug_assert!(take > 0, "tensor count exceeds the parameter total");
                sizes[largest] -= take;
                excess -= take;
            }
        }
        sizes
    }

    /// Relative backward-pass cost of each representative tensor, aligned
    /// with [`representative_layer_sizes`](Self::representative_layer_sizes)
    /// — the Table-1 analogue of
    /// `DifferentiableModel::layer_backward_costs`. Flop-proportional (one
    /// unit of backward work per parameter), which matches the dense
    /// conv/FC/gate blocks these architectures are built from; only the
    /// ratios matter to the arrival-time model. The backward pass runs
    /// output-to-input, so the last tensor's gradient arrives first.
    pub fn representative_backward_costs(&self) -> Vec<f64> {
        self.representative_layer_sizes()
            .iter()
            .map(|&s| s as f64)
            .collect()
    }

    /// Whether this benchmark is communication-bound (overhead above 50%), which is
    /// where the paper expects compression to pay off.
    pub fn is_communication_bound(&self) -> bool {
        self.communication_overhead > 0.5
    }
}

/// The compression ratios the paper sweeps in every end-to-end experiment.
pub const EVALUATED_RATIOS: [f64; 3] = [0.1, 0.01, 0.001];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_benchmarks_with_table1_parameters() {
        assert_eq!(BenchmarkId::ALL.len(), 6);
        let params: Vec<usize> = BenchmarkId::ALL
            .iter()
            .map(|b| b.spec().parameters)
            .collect();
        assert_eq!(
            params,
            vec![
                66_034_000,
                43_476_256,
                269_467,
                14_982_987,
                25_559_081,
                143_671_337
            ]
        );
    }

    #[test]
    fn communication_overheads_match_table1() {
        assert_eq!(BenchmarkId::LstmPtb.spec().communication_overhead, 0.94);
        assert_eq!(BenchmarkId::LstmAn4.spec().communication_overhead, 0.80);
        assert_eq!(
            BenchmarkId::ResNet20Cifar10.spec().communication_overhead,
            0.10
        );
        assert_eq!(
            BenchmarkId::Vgg16Cifar10.spec().communication_overhead,
            0.60
        );
        assert_eq!(
            BenchmarkId::ResNet50ImageNet.spec().communication_overhead,
            0.72
        );
        assert_eq!(
            BenchmarkId::Vgg19ImageNet.spec().communication_overhead,
            0.83
        );
    }

    #[test]
    fn communication_bound_classification() {
        assert!(BenchmarkId::LstmPtb.spec().is_communication_bound());
        assert!(!BenchmarkId::ResNet20Cifar10.spec().is_communication_bound());
        assert!(BenchmarkId::Vgg19ImageNet.spec().is_communication_bound());
    }

    #[test]
    fn optimizers_and_metrics() {
        assert_eq!(
            BenchmarkId::ResNet20Cifar10.spec().optimizer,
            OptimizerKind::Sgd
        );
        assert_eq!(
            BenchmarkId::LstmPtb.spec().optimizer,
            OptimizerKind::NesterovMomentumSgd
        );
        assert_eq!(
            BenchmarkId::LstmPtb.spec().quality_metric,
            "test perplexity"
        );
        assert_eq!(BenchmarkId::LstmPtb.to_string(), "LSTM-PTB");
    }

    #[test]
    fn gradient_bytes() {
        assert_eq!(
            BenchmarkId::ResNet20Cifar10.spec().gradient_bytes(),
            269_467 * 4
        );
    }

    #[test]
    fn evaluated_ratios_span_paper_range() {
        assert_eq!(EVALUATED_RATIOS, [0.1, 0.01, 0.001]);
    }

    #[test]
    fn representative_layers_form_a_valid_layout() {
        for benchmark in BenchmarkId::ALL {
            let spec = benchmark.spec();
            let layers = spec.representative_layer_sizes();
            assert!(layers.len() > 1, "{benchmark}: expected several tensors");
            assert!(layers.iter().all(|&s| s > 0), "{benchmark}: empty tensor");
            assert_eq!(
                layers.iter().sum::<usize>(),
                spec.parameters,
                "{benchmark}: layers must cover every parameter"
            );
            // Deterministic.
            assert_eq!(layers, spec.representative_layer_sizes());
        }
        // CNNs grow toward the classifier head; the last tensor dominates.
        let vgg = BenchmarkId::Vgg16Cifar10
            .spec()
            .representative_layer_sizes();
        assert!(vgg.last().unwrap() > vgg.first().unwrap());
        assert!(*vgg.last().unwrap() > BenchmarkId::Vgg16Cifar10.spec().parameters / 10);
        // LSTM tensors are much flatter.
        let lstm = BenchmarkId::LstmPtb.spec().representative_layer_sizes();
        let ratio = *lstm.last().unwrap() as f64 / *lstm.first().unwrap() as f64;
        assert!(
            ratio < 4.0,
            "LSTM tensors should be near-uniform, got {ratio}"
        );
    }

    #[test]
    fn representative_backward_costs_align_with_layers() {
        for benchmark in BenchmarkId::ALL {
            let spec = benchmark.spec();
            let layers = spec.representative_layer_sizes();
            let costs = spec.representative_backward_costs();
            assert_eq!(costs.len(), layers.len(), "{benchmark}: misaligned");
            assert!(costs.iter().all(|&c| c > 0.0), "{benchmark}: zero cost");
            // Flop-proportional: one unit of backward work per parameter.
            for (&size, &cost) in layers.iter().zip(&costs) {
                assert_eq!(cost, size as f64, "{benchmark}");
            }
        }
    }

    #[test]
    fn representative_layers_survive_tiny_hand_built_specs() {
        // The fields are public, so a caller can shrink a spec below the
        // synthesized tensor count; the decomposition must stay valid.
        for parameters in [1usize, 5, 23, 24, 25, 40] {
            let spec = BenchmarkSpec {
                parameters,
                ..BenchmarkId::Vgg16Cifar10.spec()
            };
            let layers = spec.representative_layer_sizes();
            assert!(layers.iter().all(|&s| s > 0), "{parameters}: empty tensor");
            assert_eq!(layers.iter().sum::<usize>(), parameters);
            assert!(layers.len() <= parameters.max(1));
        }
    }
}
