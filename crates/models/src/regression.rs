//! Linear regression — the convex workload used by the convergence tests
//! (Lemma 3 / Appendix C) where the optimum is known analytically.

use crate::dataset::RegressionDataset;
use crate::model::DifferentiableModel;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sidco_tensor::GradientVector;

/// Mean-squared-error linear regression over a [`RegressionDataset`].
///
/// Loss: `L(w) = 1/(2m) Σ (xᵢ·w - yᵢ)²`, gradient: `1/m Σ (xᵢ·w - yᵢ) xᵢ`.
///
/// # Example
///
/// ```
/// use sidco_models::dataset::RegressionDataset;
/// use sidco_models::regression::LinearRegression;
/// use sidco_models::DifferentiableModel;
///
/// let data = RegressionDataset::generate(64, 8, 0.01, 1);
/// let model = LinearRegression::new(data);
/// let params = model.initial_parameters(0);
/// let (loss, grad) = model.loss_and_gradient(params.as_slice(), &[0, 1, 2, 3]);
/// assert!(loss > 0.0);
/// assert_eq!(grad.len(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct LinearRegression {
    data: RegressionDataset,
}

impl LinearRegression {
    /// Wraps a regression dataset.
    pub fn new(data: RegressionDataset) -> Self {
        Self { data }
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &RegressionDataset {
        &self.data
    }

    /// Distance of `params` from the data-generating weights, a convergence
    /// diagnostic only available because the dataset is synthetic.
    pub fn distance_to_truth(&self, params: &[f32]) -> f64 {
        params
            .iter()
            .zip(self.data.true_weights())
            .map(|(&p, &w)| ((p - w) as f64).powi(2))
            .sum::<f64>()
            .sqrt()
    }
}

impl DifferentiableModel for LinearRegression {
    fn num_parameters(&self) -> usize {
        self.data.dim()
    }

    fn num_examples(&self) -> usize {
        self.data.len()
    }

    fn initial_parameters(&self, seed: u64) -> GradientVector {
        let mut rng = SmallRng::seed_from_u64(seed);
        GradientVector::from_vec(
            (0..self.data.dim())
                .map(|_| rng.gen_range(-0.01f32..0.01))
                .collect(),
        )
    }

    fn loss_and_gradient(&self, params: &[f32], examples: &[usize]) -> (f64, GradientVector) {
        assert_eq!(
            params.len(),
            self.num_parameters(),
            "parameter dimension mismatch"
        );
        assert!(!examples.is_empty(), "mini-batch must not be empty");
        let m = examples.len() as f64;
        let mut grad = vec![0.0f32; params.len()];
        let mut loss = 0.0f64;
        for &i in examples {
            let x = self.data.features(i);
            let residual: f64 = x
                .iter()
                .zip(params)
                .map(|(&xj, &wj)| (xj * wj) as f64)
                .sum::<f64>()
                - self.data.target(i) as f64;
            loss += 0.5 * residual * residual;
            let scale = (residual / m) as f32;
            for (gj, &xj) in grad.iter_mut().zip(x) {
                *gj += scale * xj;
            }
        }
        (loss / m, GradientVector::from_vec(grad))
    }

    fn evaluate(&self, params: &[f32]) -> f64 {
        let all: Vec<usize> = (0..self.data.len()).collect();
        self.loss_and_gradient(params, &all).0
    }

    fn name(&self) -> &'static str {
        "linear-regression"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> LinearRegression {
        LinearRegression::new(RegressionDataset::generate(200, 16, 0.01, 21))
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let m = model();
        let params = m.initial_parameters(1);
        let batch: Vec<usize> = (0..32).collect();
        let (_, grad) = m.loss_and_gradient(params.as_slice(), &batch);
        let h = 1e-3f32;
        for j in [0usize, 5, 15] {
            let mut plus = params.clone();
            plus[j] += h;
            let mut minus = params.clone();
            minus[j] -= h;
            let numeric = (m.loss_and_gradient(plus.as_slice(), &batch).0
                - m.loss_and_gradient(minus.as_slice(), &batch).0)
                / (2.0 * h as f64);
            assert!(
                (grad[j] as f64 - numeric).abs() < 1e-3,
                "coordinate {j}: analytic {} vs numeric {numeric}",
                grad[j]
            );
        }
    }

    #[test]
    fn full_batch_gradient_descent_converges_to_truth() {
        let m = model();
        let mut params = m.initial_parameters(2);
        let all: Vec<usize> = (0..m.num_examples()).collect();
        let initial_loss = m.evaluate(params.as_slice());
        for _ in 0..300 {
            let (_, grad) = m.loss_and_gradient(params.as_slice(), &all);
            params.axpy(-0.05, &grad);
        }
        let final_loss = m.evaluate(params.as_slice());
        assert!(
            final_loss < initial_loss * 0.05,
            "loss {initial_loss} -> {final_loss}"
        );
        assert!(m.distance_to_truth(params.as_slice()) < 0.5);
    }

    #[test]
    fn zero_gradient_at_exact_solution_without_noise() {
        let data = RegressionDataset::generate(100, 8, 0.0, 22);
        let truth: Vec<f32> = data.true_weights().to_vec();
        let m = LinearRegression::new(data);
        let all: Vec<usize> = (0..m.num_examples()).collect();
        let (loss, grad) = m.loss_and_gradient(&truth, &all);
        assert!(loss < 1e-6);
        assert!(grad.l2_norm() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "mini-batch")]
    fn empty_batch_panics() {
        let m = model();
        let params = m.initial_parameters(0);
        m.loss_and_gradient(params.as_slice(), &[]);
    }

    #[test]
    fn metadata() {
        let m = model();
        assert_eq!(m.name(), "linear-regression");
        assert_eq!(m.num_parameters(), 16);
        // A single dense weight vector: the default single-layer export.
        assert_eq!(m.layer_sizes(), vec![16]);
        assert_eq!(m.num_examples(), 200);
        assert!(m.accuracy(&[0.0; 16]).is_none());
        assert_eq!(m.dataset().dim(), 16);
    }
}
