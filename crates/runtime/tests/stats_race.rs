//! Regression test: `PoolStats` snapshots taken *concurrently* with worker
//! activity are consistent — every monotone counter moves forward between
//! consecutive snapshots, so `PoolStats::since` never has to saturate a
//! "negative" delta away (a saturating zero would silently hide a counter
//! read racing backwards).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use sidco_runtime::{NumaTopology, PoolStats, Runtime, WorkStealing};

/// Monotone counters of a snapshot, in a fixed order (gauges excluded:
/// `currently_parked` legitimately goes both ways and `workers_pinned` is
/// fixed at spawn).
fn monotone(stats: &PoolStats) -> Vec<(&'static str, u64)> {
    let mut v = vec![
        ("threads_spawned", stats.threads_spawned),
        ("jobs", stats.jobs),
        ("chunks_executed", stats.chunks_executed),
        ("local_pops", stats.local_pops),
        ("injector_pops", stats.injector_pops),
        ("sibling_steals", stats.sibling_steals),
        ("remote_steals", stats.remote_steals),
        ("parks", stats.parks),
        ("unparks", stats.unparks),
    ];
    for (i, &c) in stats.socket_chunks.iter().enumerate() {
        // The socket index distinguishes entries; the label only names the
        // family in assertion messages.
        let _ = i;
        v.push(("socket_chunks", c));
    }
    v
}

#[test]
fn concurrent_snapshots_never_need_a_saturated_delta() {
    let pool = Arc::new(WorkStealing::with_topology(
        4,
        NumaTopology::synthetic(2, 2),
    ));
    let stop = Arc::new(AtomicBool::new(false));

    let worker = {
        let pool = Arc::clone(&pool);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                pool.run_indexed(64, &|i| {
                    std::hint::black_box(i);
                });
            }
        })
    };

    let mut prev = pool.stats();
    for _ in 0..500 {
        let next = pool.stats();
        for ((name, a), (_, b)) in monotone(&prev).into_iter().zip(monotone(&next)) {
            assert!(
                b >= a,
                "counter `{name}` went backwards across concurrent snapshots: {a} -> {b}"
            );
        }
        // The delta `since` computes must therefore be the exact difference,
        // never a saturation artifact.
        let delta = next.since(&prev);
        assert_eq!(delta.jobs, next.jobs - prev.jobs);
        assert_eq!(
            delta.chunks_executed,
            next.chunks_executed - prev.chunks_executed
        );
        assert_eq!(delta.parks, next.parks - prev.parks);
        // Snapshots are taken under the sleep lock, so the park ledger
        // balances even mid-transition.
        assert_eq!(next.parks - next.unparks, next.currently_parked);
        prev = next;
    }

    stop.store(true, Ordering::Relaxed);
    worker.join().expect("worker thread panicked");
}
