//! Model-checked concurrency properties of the work-stealing pool.
//!
//! Compiled only under `RUSTFLAGS="--cfg sidco_loom"`, which reroutes every
//! mutex, condvar, atomic and thread spawn in `sidco-runtime` and the
//! vendored `crossbeam` deque through the vendored `loom` checker (see
//! `crates/runtime/src/sync.rs`). Each `model` closure then runs under a
//! deterministic scheduler that enumerates thread interleavings — bounded
//! exhaustive DFS with a preemption bound, plus seeded random walks when the
//! space is too deep (`SIDCO_LOOM_MAX_BRANCHES` caps the budget; see the
//! README's Verification section).
//!
//! What a *pass* means here: under every explored schedule the closure ran to
//! completion with all assertions holding and **no deadlock** — a parked
//! worker that nobody wakes leaves the model with only blocked threads, which
//! the checker reports as a failed execution. Lost-wakeup freedom is
//! therefore checked implicitly by every test that parks workers, and
//! `checker_catches_a_seeded_lost_wakeup` proves the detector actually fires
//! by re-introducing the bug the pool's park protocol is built to prevent.
//!
//! A pool-level repro of the detector firing, reproducible by hand: delete
//! the `shared.wake.notify_all()` from `impl Drop for WorkStealing` in
//! pool.rs and rerun this suite — `pool_shutdown_quiesces_workers_parked_
//! between_jobs` fails within ~50 executions with
//! `deadlock: … [1 sidco-pool-0: blocked on condvar wait] …`. (Deleting the
//! eventcount re-check in `worker_loop` is *not* caught by the completion
//! tests, and that is correct: a helping caller executes queued tasks
//! itself, so job liveness never depends on worker wakeups — the eventcount
//! is a latency optimisation, and only the shutdown/quiescence paths truly
//! depend on notifies.)
//!
//! Run with:
//!
//! ```text
//! RUSTFLAGS="--cfg sidco_loom" cargo test -p sidco-runtime --test loom_pool
//! ```

#![cfg(sidco_loom)]

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{Arc, Condvar, Mutex};
use sidco_runtime::numa::NumaTopology;
use sidco_runtime::pool::WorkStealing;
use sidco_runtime::Runtime;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Exploration limits for the pool models. The full pool has a deep schedule
/// space (every deque lock is a schedule point), so by default these suites
/// run a few hundred DFS executions plus random walks — enough to cover the
/// interesting park/wake races within seconds. CI and soak runs raise the
/// budget through `SIDCO_LOOM_MAX_BRANCHES` without touching the tests.
fn bounded() -> loom::Builder {
    let mut b = loom::Builder::from_env();
    if std::env::var(loom::MAX_BRANCHES_ENV).is_err() {
        b.max_branches = 400;
    }
    if std::env::var(loom::RANDOM_WALKS_ENV).is_err() {
        b.random_walks = 48;
    }
    b
}

/// A two-worker pool on a single synthetic socket — the smallest
/// configuration that exercises parking, waking, stealing and helping.
fn small_pool() -> WorkStealing {
    WorkStealing::with_topology(2, NumaTopology::synthetic(1, 2))
}

#[test]
fn pool_completes_every_job_without_lost_wakeups() {
    bounded().check(|| {
        let pool = small_pool();
        let hits = Arc::new(AtomicUsize::new(0));
        let hits_in_body = Arc::clone(&hits);
        pool.run_indexed(2, &move |_i| {
            hits_in_body.fetch_add(1, Ordering::SeqCst);
        });
        // `run_indexed` returned: the completion condvar handshake worked
        // under this schedule. Every chunk must have run exactly once.
        assert_eq!(hits.load(Ordering::SeqCst), 2, "every chunk runs once");
        // Dropping the pool must wake any parked worker and quiesce; a
        // missed shutdown wakeup leaves blocked threads behind, which the
        // checker reports as a deadlock.
        drop(pool);
    });
}

#[test]
fn pool_shutdown_quiesces_workers_parked_between_jobs() {
    bounded().check(|| {
        let pool = small_pool();
        // Two back-to-back jobs: workers can park after the first job drains
        // and must be woken by the second submission (the unpark path), then
        // park again before shutdown.
        pool.run_indexed(2, &|_| {});
        pool.run_indexed(2, &|_| {});
        drop(pool);
    });
}

#[test]
fn pool_panic_reaches_exactly_the_caller() {
    bounded().check(|| {
        let pool = small_pool();
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run_indexed(2, &|i| {
                assert!(i != 1, "chunk 1 exploded");
            });
        }));
        // The chunk panic must surface from `run_indexed` — in every
        // schedule, wherever the failing chunk executed (worker or helping
        // caller) — and must not kill the worker that ran it.
        assert!(result.is_err(), "the chunk panic reaches the caller");
        let hits = Arc::new(AtomicUsize::new(0));
        let hits_in_body = Arc::clone(&hits);
        pool.run_indexed(2, &move |_| {
            hits_in_body.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 2, "the pool survives a panic");
        drop(pool);
    });
}

#[test]
fn park_ledger_balances_under_every_schedule() {
    bounded().check(|| {
        let pool = Arc::new(small_pool());
        let observer_pool = Arc::clone(&pool);
        // An observer snapshots the stats *while* workers are parking and
        // waking. Snapshots are taken under the sleep lock, so the ledger
        // invariant must hold in every one, at every point of every
        // schedule.
        let observer = loom::thread::spawn(move || {
            for _ in 0..2 {
                let stats = observer_pool.stats();
                assert_eq!(
                    stats.parks - stats.unparks,
                    stats.currently_parked,
                    "parks - unparks == currently_parked in every snapshot"
                );
            }
        });
        pool.run_indexed(2, &|_| {});
        observer.join().expect("observer joins");
        let stats = pool.stats();
        assert_eq!(stats.parks - stats.unparks, stats.currently_parked);
        drop(pool);
    });
}

#[test]
fn deque_steal_and_pop_never_duplicate_or_lose_tasks() {
    // Small enough to check *exhaustively*: one owner popping, one thief
    // stealing, three tasks. Every task must be taken exactly once across
    // the two ends, under every single schedule.
    let report = loom::Builder::from_env().check(|| {
        let worker = Arc::new(crossbeam::deque::Worker::<usize>::new_lifo());
        let stealer = worker.stealer();
        for task in 0..3 {
            worker.push(task);
        }
        let thief = loom::thread::spawn(move || {
            let mut got = Vec::new();
            got.extend(stealer.steal().success());
            got.extend(stealer.steal().success());
            got
        });
        let mut got = Vec::new();
        got.extend(worker.pop());
        got.extend(worker.pop());
        let mut all = thief.join().expect("thief joins");
        all.extend(got);
        all.sort_unstable();
        // 4 takes from a 3-task deque: exactly one comes up empty, and the
        // three successes are distinct — no loss, no duplication.
        assert_eq!(all, vec![0, 1, 2], "each task taken exactly once");
    });
    assert!(
        report.complete,
        "the deque model must be exhausted, got {report:?}"
    );
}

#[test]
fn rendezvous_completes_each_bucket_exactly_once_under_every_schedule() {
    use sidco_runtime::BucketRendezvous;
    // Two arrivers racing over two buckets in opposite orders — the smallest
    // shape where bucket completions can interleave every way. Under every
    // schedule each bucket must complete exactly once, `wait_all` must
    // return (a lost completion wakeup would deadlock the model), and the
    // completion order must name both buckets.
    bounded().check(|| {
        let rendezvous = Arc::new(BucketRendezvous::new(2, 2));
        let other = Arc::clone(&rendezvous);
        let racer = loom::thread::spawn(move || {
            let mut finished = 0;
            finished += usize::from(other.arrive(1));
            finished += usize::from(other.arrive(0));
            finished
        });
        let mut finished = 0;
        finished += usize::from(rendezvous.arrive(0));
        finished += usize::from(rendezvous.arrive(1));
        let order = rendezvous.wait_all();
        finished += racer.join().expect("racer joins");
        // 4 arrivals over 2×2: exactly one arrival per bucket was the last.
        assert_eq!(finished, 2, "each bucket completed by exactly one arrival");
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1], "every bucket appears exactly once");
        // The rendezvous is reusable once quiescent: the reset must restore
        // the full arrival budget.
        rendezvous.reset();
        assert!(!rendezvous.arrive(0));
        assert!(rendezvous.arrive(0));
    });
}

#[test]
fn checker_catches_a_seeded_lost_wakeup() {
    // The regression demo required by the verification story: re-introduce
    // the bug the pool's park protocol exists to prevent — checking the
    // queue *before* taking the sleep lock and parking without re-checking
    // under it (the pool instead registers in `sleepers` and re-checks every
    // queue after a SeqCst fence; see `worker_loop` in pool.rs). The checker
    // must find the schedule where the producer's notify lands between the
    // consumer's unlocked emptiness check and its wait, and report the
    // parked-forever consumer as a deadlock.
    let result = catch_unwind(|| {
        bounded().check(|| {
            let queue = Arc::new(Mutex::new(Vec::<u32>::new()));
            let sleep = Arc::new((Mutex::new(()), Condvar::new()));
            let (q, s) = (Arc::clone(&queue), Arc::clone(&sleep));
            let consumer = loom::thread::spawn(move || loop {
                if let Some(task) = q.lock().expect("queue poisoned").pop() {
                    break task;
                }
                // BUG under test: the queue emptiness decision above was made
                // outside the sleep lock and is not re-checked under it.
                let (lock, cv) = &*s;
                let guard = lock.lock().expect("sleep lock poisoned");
                drop(cv.wait(guard).expect("sleep lock poisoned"));
            });
            queue.lock().expect("queue poisoned").push(7);
            {
                let (lock, cv) = &*sleep;
                let _guard = lock.lock().expect("sleep lock poisoned");
                cv.notify_one();
            }
            assert_eq!(consumer.join().expect("consumer joins"), 7);
        });
    });
    let message = match result {
        Ok(report) => panic!("the seeded lost wakeup went undetected: {report:?}"),
        Err(payload) => payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "<non-string panic payload>".to_string()),
    };
    assert!(
        message.contains("deadlock"),
        "the checker must report the lost wakeup as a deadlock, got: {message}"
    );
    assert!(
        message.contains("condvar wait"),
        "the blocked consumer must show up parked on the condvar: {message}"
    );
}
