//! Observable counters of the work-stealing pool, for the bench harness and
//! the lifecycle tests (spawn-once, steal traffic, park/unpark churn,
//! per-socket placement).

use crate::sync::atomic::{AtomicU64, Ordering};

/// Internal atomic counter cells. One instance lives inside the pool's shared
/// state; every counter is monotone and updated with relaxed ordering (the
/// counters observe the pool, they never synchronise it).
#[derive(Debug)]
pub(crate) struct StatCells {
    pub(crate) threads_spawned: AtomicU64,
    pub(crate) jobs: AtomicU64,
    pub(crate) chunks: AtomicU64,
    pub(crate) local_pops: AtomicU64,
    pub(crate) injector_pops: AtomicU64,
    pub(crate) sibling_steals: AtomicU64,
    pub(crate) remote_steals: AtomicU64,
    pub(crate) parks: AtomicU64,
    pub(crate) unparks: AtomicU64,
    /// Workers whose `sched_setaffinity` pin succeeded at spawn (equals the
    /// worker count on a supported host whose topology names online CPUs;
    /// stays 0 on unsupported platforms or synthetic topologies).
    pub(crate) workers_pinned: AtomicU64,
    /// Gauge (not monotone): workers currently blocked in the condvar wait.
    /// Every transition happens under the pool's sleep lock, paired with the
    /// matching `parks`/`unparks` bump, so a snapshot taken under that lock
    /// satisfies `parks - unparks == currently_parked` exactly.
    pub(crate) currently_parked: AtomicU64,
    pub(crate) socket_chunks: Vec<AtomicU64>,
}

impl StatCells {
    pub(crate) fn new(sockets: usize) -> Self {
        Self {
            threads_spawned: AtomicU64::new(0),
            jobs: AtomicU64::new(0),
            chunks: AtomicU64::new(0),
            local_pops: AtomicU64::new(0),
            injector_pops: AtomicU64::new(0),
            sibling_steals: AtomicU64::new(0),
            remote_steals: AtomicU64::new(0),
            parks: AtomicU64::new(0),
            unparks: AtomicU64::new(0),
            workers_pinned: AtomicU64::new(0),
            currently_parked: AtomicU64::new(0),
            socket_chunks: (0..sockets).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    pub(crate) fn bump(counter: &AtomicU64) {
        // Relaxed: pure observation — no reader infers anything about *other*
        // memory from a counter value, so no ordering is needed.
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> PoolStats {
        // Relaxed: cross-counter consistency comes from the pool's sleep
        // lock (held by the caller, see `WorkStealing::stats`), not from the
        // loads themselves.
        let read = |cell: &AtomicU64| cell.load(Ordering::Relaxed);
        PoolStats {
            threads_spawned: read(&self.threads_spawned),
            jobs: read(&self.jobs),
            chunks_executed: read(&self.chunks),
            local_pops: read(&self.local_pops),
            injector_pops: read(&self.injector_pops),
            sibling_steals: read(&self.sibling_steals),
            remote_steals: read(&self.remote_steals),
            parks: read(&self.parks),
            unparks: read(&self.unparks),
            workers_pinned: read(&self.workers_pinned),
            currently_parked: read(&self.currently_parked),
            socket_chunks: self.socket_chunks.iter().map(read).collect(),
        }
    }
}

/// A point-in-time snapshot of a pool's lifetime counters.
///
/// All counters are cumulative since the pool was created; diff two snapshots
/// to measure one workload. `threads_spawned` is the load-bearing lifecycle
/// counter: it equals the pool's worker count after the first parallel job and
/// **never grows again** — repeated `compress` calls reuse the same OS
/// threads, which is the pool's whole reason to exist.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// OS worker threads spawned over the pool's lifetime (equals the worker
    /// count after lazy initialisation; constant afterwards).
    pub threads_spawned: u64,
    /// Parallel jobs submitted via `run_indexed`.
    pub jobs: u64,
    /// Chunk tasks executed across all jobs (by workers and helping callers).
    pub chunks_executed: u64,
    /// Tasks a worker popped from its own deque (cache-hot LIFO path).
    pub local_pops: u64,
    /// Tasks taken from a socket injector by a worker of that same socket
    /// (NUMA-local submission path).
    pub injector_pops: u64,
    /// Tasks stolen from a sibling worker on the same socket (helping
    /// callers' deque steals are also counted here — a caller has no home
    /// socket, so its takes are never "remote").
    pub sibling_steals: u64,
    /// Tasks a *pinned worker* took across sockets (remote injectors or
    /// remote workers' deques) — the traffic NUMA-aware placement exists to
    /// minimise.
    pub remote_steals: u64,
    /// Times a worker went to sleep for lack of work.
    pub parks: u64,
    /// Times a sleeping worker was woken by new work.
    pub unparks: u64,
    /// Workers the kernel accepted a CPU-affinity mask for at spawn time
    /// (see [`crate::affinity::pin_current_thread`]). Equals
    /// `threads_spawned` on a supported Linux host; 0 where pinning is
    /// unavailable — results are identical either way.
    pub workers_pinned: u64,
    /// Workers blocked in the condvar wait at snapshot time — the gauge that
    /// balances the two monotone counters: every snapshot satisfies
    /// `parks - unparks == currently_parked` exactly, because park/unpark
    /// transitions and the snapshot itself all happen under the pool's sleep
    /// lock. (Historical snapshots read the counters without the lock and
    /// reported an unexplained "drift" of exactly the sleeping workers.)
    pub currently_parked: u64,
    /// Chunks *assigned* to each socket at submission time under the
    /// first-touch placement model (indexed by socket).
    pub socket_chunks: Vec<u64>,
}

impl PoolStats {
    /// Total steal traffic (same-socket sibling steals plus cross-socket
    /// steals).
    pub fn steals(&self) -> u64 {
        self.sibling_steals + self.remote_steals
    }

    /// Total task acquisitions (local pops, injector takes, and steals).
    /// Each acquisition hands over a *range* task that may cover several
    /// chunks, so this is the right denominator for traffic ratios.
    pub fn acquisitions(&self) -> u64 {
        self.local_pops + self.injector_pops + self.sibling_steals + self.remote_steals
    }

    /// Fraction of task acquisitions that crossed a socket boundary (0 when
    /// nothing was acquired).
    pub fn remote_fraction(&self) -> f64 {
        if self.acquisitions() == 0 {
            return 0.0;
        }
        self.remote_steals as f64 / self.acquisitions() as f64
    }

    /// Feed this snapshot into a trace metrics sink as gauges named
    /// `{prefix}.{counter}`. Gauges rather than counters because a snapshot
    /// is already cumulative — re-recording overwrites with the latest
    /// reading instead of double-counting. No-op when the sink is disabled.
    pub fn record_metrics(&self, sink: &sidco_trace::TraceSink, prefix: &str) {
        if !sink.enabled() {
            return;
        }
        let pairs: [(&str, u64); 10] = [
            ("threads_spawned", self.threads_spawned),
            ("jobs", self.jobs),
            ("chunks_executed", self.chunks_executed),
            ("local_pops", self.local_pops),
            ("injector_pops", self.injector_pops),
            ("sibling_steals", self.sibling_steals),
            ("remote_steals", self.remote_steals),
            ("parks", self.parks),
            ("unparks", self.unparks),
            ("workers_pinned", self.workers_pinned),
        ];
        for (name, v) in pairs {
            sink.gauge_set(&format!("{prefix}.{name}"), v as f64);
        }
        for (socket, &chunks) in self.socket_chunks.iter().enumerate() {
            sink.gauge_set(&format!("{prefix}.socket_chunks.{socket}"), chunks as f64);
        }
    }

    /// The counter deltas accumulated since `baseline` — the snapshot-diff
    /// idiom (`let before = pool.stats(); work(); pool.stats().since(&before)`)
    /// as a method, so callers measure one workload instead of the pool's
    /// lifetime. Monotone counters subtract saturating (a `baseline` from a
    /// *different* pool yields zeros rather than wrapping); the two gauges are
    /// carried over as-is: `currently_parked` is a point-in-time reading and
    /// `workers_pinned` is fixed at spawn, so neither has a meaningful delta
    /// and the `parks - unparks == currently_parked` ledger identity holds
    /// only for full snapshots, not diffs.
    #[must_use]
    pub fn since(&self, baseline: &PoolStats) -> PoolStats {
        PoolStats {
            threads_spawned: self
                .threads_spawned
                .saturating_sub(baseline.threads_spawned),
            jobs: self.jobs.saturating_sub(baseline.jobs),
            chunks_executed: self
                .chunks_executed
                .saturating_sub(baseline.chunks_executed),
            local_pops: self.local_pops.saturating_sub(baseline.local_pops),
            injector_pops: self.injector_pops.saturating_sub(baseline.injector_pops),
            sibling_steals: self.sibling_steals.saturating_sub(baseline.sibling_steals),
            remote_steals: self.remote_steals.saturating_sub(baseline.remote_steals),
            parks: self.parks.saturating_sub(baseline.parks),
            unparks: self.unparks.saturating_sub(baseline.unparks),
            workers_pinned: self.workers_pinned,
            currently_parked: self.currently_parked,
            socket_chunks: self
                .socket_chunks
                .iter()
                .enumerate()
                .map(|(i, &c)| {
                    c.saturating_sub(baseline.socket_chunks.get(i).copied().unwrap_or(0))
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_cells() {
        let cells = StatCells::new(2);
        StatCells::bump(&cells.jobs);
        StatCells::bump(&cells.chunks);
        StatCells::bump(&cells.chunks);
        StatCells::bump(&cells.sibling_steals);
        StatCells::bump(&cells.remote_steals);
        StatCells::bump(&cells.socket_chunks[1]);
        StatCells::bump(&cells.parks);
        StatCells::bump(&cells.currently_parked);
        let stats = cells.snapshot();
        assert_eq!(stats.parks - stats.unparks, stats.currently_parked);
        assert_eq!(stats.jobs, 1);
        assert_eq!(stats.chunks_executed, 2);
        assert_eq!(stats.steals(), 2);
        assert_eq!(stats.socket_chunks, vec![0, 1]);
        assert!((stats.remote_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(PoolStats::default().remote_fraction(), 0.0);
    }

    #[test]
    fn since_diffs_monotone_counters_and_carries_gauges() {
        let cells = StatCells::new(2);
        StatCells::bump(&cells.jobs);
        StatCells::bump(&cells.chunks);
        StatCells::bump(&cells.socket_chunks[0]);
        StatCells::bump(&cells.workers_pinned);
        let before = cells.snapshot();
        StatCells::bump(&cells.jobs);
        StatCells::bump(&cells.chunks);
        StatCells::bump(&cells.chunks);
        StatCells::bump(&cells.socket_chunks[1]);
        let delta = cells.snapshot().since(&before);
        assert_eq!(delta.jobs, 1);
        assert_eq!(delta.chunks_executed, 2);
        assert_eq!(delta.socket_chunks, vec![0, 1]);
        // Gauges carry the current reading rather than a delta.
        assert_eq!(delta.workers_pinned, 1);
        // A baseline from a larger/unrelated pool saturates instead of
        // wrapping, including extra socket entries.
        let foreign = PoolStats {
            jobs: 100,
            socket_chunks: vec![50, 50, 50],
            ..PoolStats::default()
        };
        let sat = cells.snapshot().since(&foreign);
        assert_eq!(sat.jobs, 0);
        assert_eq!(sat.socket_chunks, vec![0, 0]);
    }
}
