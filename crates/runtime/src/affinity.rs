//! Physical CPU pinning for pool workers: a stub-gated `sched_setaffinity`
//! wrapper with no external dependencies.
//!
//! The build environment is offline (no libc crate in `vendor/`), so the
//! syscall is issued directly with inline assembly on the platforms where the
//! ABI is stable and known (`linux` × {`x86_64`, `aarch64`}); everywhere else
//! [`pin_current_thread`] is a no-op returning `false`. Pinning is strictly a
//! *performance* measure: [`NumaTopology`](crate::NumaTopology) placement is
//! already honoured logically by the pool's per-socket queues, and results
//! are bit-identical whether or not the kernel accepted the mask.
//!
//! # Failure model
//!
//! `sched_setaffinity` rejects masks naming no online CPU (`EINVAL`), which
//! is exactly what a synthetic test topology produces on a smaller host; the
//! wrapper reports `false` and the caller carries on unpinned. Masks that
//! name a mix of online and offline CPUs are intersected with the online set
//! by the kernel, which is the desired degradation.

/// Capacity of the fixed-size CPU mask, matching glibc's `CPU_SETSIZE`.
/// CPUs with ids at or above this are ignored by [`pin_current_thread`].
pub const MAX_CPUS: usize = 1024;

/// `u64` words in the mask (`MAX_CPUS / 64`).
const MASK_WORDS: usize = MAX_CPUS / 64;

/// Whether this build can actually issue the affinity syscall (`false` means
/// [`pin_current_thread`] is compiled as a no-op).
pub const fn supported() -> bool {
    cfg!(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))
}

/// Pins the calling thread to the given CPU ids via `sched_setaffinity(0, …)`
/// (pid 0 targets the calling thread). Returns `true` only if the kernel
/// accepted the mask; `false` when the list is empty, every id is out of
/// range (≥ [`MAX_CPUS`]), the kernel rejected the mask (no named CPU is
/// online), or the platform has no syscall wrapper.
pub fn pin_current_thread(cpus: &[usize]) -> bool {
    let mut mask = [0u64; MASK_WORDS];
    let mut any = false;
    for &cpu in cpus {
        if cpu < MAX_CPUS {
            mask[cpu / 64] |= 1u64 << (cpu % 64);
            any = true;
        }
    }
    if !any {
        return false;
    }
    sched_setaffinity_current(&mask)
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn sched_setaffinity_current(mask: &[u64; MASK_WORDS]) -> bool {
    const SYS_SCHED_SETAFFINITY: usize = 203;
    let ret: isize;
    // SAFETY: raw `sched_setaffinity(0, sizeof mask, mask)` syscall. pid 0
    // targets only the calling thread; the pointer/length pair names a live
    // local array the kernel only reads; rcx and r11 are declared clobbered
    // because the `syscall` instruction overwrites them (return RIP and
    // RFLAGS), and no Rust memory is written.
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") SYS_SCHED_SETAFFINITY as isize => ret,
            in("rdi") 0usize,
            in("rsi") std::mem::size_of_val(mask),
            in("rdx") mask.as_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret == 0
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
fn sched_setaffinity_current(mask: &[u64; MASK_WORDS]) -> bool {
    const SYS_SCHED_SETAFFINITY: usize = 122;
    let ret: isize;
    // SAFETY: raw `sched_setaffinity(0, sizeof mask, mask)` syscall via
    // `svc #0`. pid 0 targets only the calling thread, the pointer/length
    // pair names a live local array the kernel only reads, and the aarch64
    // syscall ABI preserves all registers except x0 (declared as the output).
    unsafe {
        std::arch::asm!(
            "svc #0",
            in("x8") SYS_SCHED_SETAFFINITY,
            inlateout("x0") 0usize => ret,
            in("x1") std::mem::size_of_val(mask),
            in("x2") mask.as_ptr(),
            options(nostack),
        );
    }
    ret == 0
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
fn sched_setaffinity_current(_mask: &[u64; MASK_WORDS]) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NumaTopology;

    #[test]
    fn degenerate_masks_are_rejected_without_a_syscall() {
        assert!(!pin_current_thread(&[]));
        // Every id out of range → empty mask → rejected up front.
        assert!(!pin_current_thread(&[MAX_CPUS, MAX_CPUS + 7]));
    }

    #[test]
    fn pinning_to_the_detected_topology_succeeds_where_supported() {
        // The detected topology names the host's real CPUs, so on a
        // supported platform the kernel must accept the full mask. (Each
        // libtest test runs on its own thread, so the pin does not leak.)
        let topo = NumaTopology::detect();
        let all: Vec<usize> = (0..topo.nodes())
            .flat_map(|n| topo.node_cpu_ids(n).to_vec())
            .collect();
        let pinned = pin_current_thread(&all);
        assert_eq!(pinned, supported());
    }

    #[test]
    fn nonexistent_cpus_degrade_to_a_no_op() {
        // A mask naming only (almost certainly) offline CPUs: the kernel
        // rejects it with EINVAL and the wrapper reports false rather than
        // panicking — the degradation path synthetic topologies rely on.
        if supported() {
            assert!(!pin_current_thread(&[MAX_CPUS - 1]) || num_cpus_is_huge());
        }
    }

    fn num_cpus_is_huge() -> bool {
        std::thread::available_parallelism().is_ok_and(|n| n.get() >= MAX_CPUS)
    }
}
