//! # sidco-runtime — the execution substrate under the compression engine
//!
//! SIDCo's estimator math made threshold selection cheap; what is left of the
//! compression budget is *runtime* overhead — and the engine used to pay it
//! on every call by spawning scoped threads and sharding
//! placement-obliviously. This crate factors that substrate out:
//!
//! * [`Runtime`] — the executor abstraction: run `n` index-addressed chunk
//!   tasks, each exactly once. Callers own the chunk decomposition and the
//!   output slots, so *any* correct `Runtime` yields bit-identical results.
//! * [`ScopedFallback`] — the old behaviour: spawn scoped threads per call,
//!   contiguous chunk blocks per worker. Zero state, zero reuse.
//! * [`WorkStealing`] — a persistent pool: lazy one-time spawn, per-worker
//!   Chase–Lev deques, per-socket injectors placed by a [`NumaTopology`]
//!   model, parked idle workers, and observable [`PoolStats`].
//!
//! The engine (and anything else) picks between them with
//! [`RuntimeKind::from_env`] (`SIDCO_RUNTIME=scoped|pool`) and obtains
//! process-wide shared instances from [`handle`].
//!
//! # Determinism contract
//!
//! A `Runtime` executes every index in `0..tasks` exactly once, on some
//! thread, in some order, and returns only after all of them ran. It never
//! chooses chunk boundaries and never merges results — callers do both as a
//! pure function of input length. Consequently outputs are **bit-identical
//! across runtimes, worker counts, and steal orders**; the only observable
//! differences are wall-clock time and [`PoolStats`].

#![warn(missing_docs)]

pub mod affinity;
pub mod numa;
pub mod pool;
pub mod rendezvous;
pub mod stats;
pub(crate) mod sync;

pub use numa::{NumaNode, NumaTopology};
pub use pool::WorkStealing;
pub use rendezvous::BucketRendezvous;
pub use stats::PoolStats;

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Environment variable selecting the engine's runtime
/// ([`RuntimeKind::from_env`]): `scoped` for per-call scoped threads, `pool`
/// for the persistent work-stealing pool (the default).
pub const RUNTIME_ENV_VAR: &str = "SIDCO_RUNTIME";

/// An executor for index-addressed chunk tasks.
///
/// Implementations must run `body(i)` exactly once for every `i in 0..tasks`
/// and return only after every call finished (a panic in any body must
/// propagate to the caller, after all other bodies completed or panicked).
/// `body` receives the chunk *index*; callers translate indices to data
/// ranges and write results into per-index slots, which is what makes every
/// implementation produce identical bits.
pub trait Runtime: std::fmt::Debug + Send + Sync {
    /// A short stable identifier (`"scoped"`, `"pool"`).
    fn name(&self) -> &'static str;

    /// The configured worker budget (1 means sequential).
    fn parallelism(&self) -> usize;

    /// Runs `body(0..tasks)`, each index exactly once, blocking to completion.
    fn run_indexed(&self, tasks: usize, body: &(dyn Fn(usize) + Sync));

    /// Pool counters, for runtimes that keep them (`None` for stateless
    /// runtimes such as [`ScopedFallback`]).
    fn stats(&self) -> Option<PoolStats> {
        None
    }

    /// Pre-registers this runtime's worker tracks with the active trace
    /// session, so every worker appears in the exported timeline even when a
    /// fast run completes before some workers get scheduled (their lifecycle
    /// events would otherwise land after the session closed). No-op when
    /// tracing is disabled or for runtimes without persistent workers.
    fn register_trace_tracks(&self) {}
}

/// Runs `body(0..tasks)` inline, continuing past panics so every index
/// executes exactly once; the first panic is re-raised after the loop. Both
/// runtimes use this for their sequential fast paths so the [`Runtime`]
/// contract holds there too.
pub(crate) fn run_sequential_to_completion(tasks: usize, body: &(dyn Fn(usize) + Sync)) {
    let mut first_panic = None;
    for index in 0..tasks {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(index)));
        if let Err(payload) = outcome {
            first_panic.get_or_insert(payload);
        }
    }
    if let Some(payload) = first_panic {
        std::panic::resume_unwind(payload);
    }
}

/// The pre-pool behaviour, kept as the fallback and the differential-testing
/// baseline: every call spawns up to `threads` scoped OS threads, each
/// processing a contiguous block of chunk indices, and joins them before
/// returning. No state persists between calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScopedFallback {
    threads: usize,
}

impl ScopedFallback {
    /// A scoped runtime spawning up to `threads` workers per call.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "a runtime needs at least one thread");
        Self { threads }
    }
}

impl Runtime for ScopedFallback {
    fn name(&self) -> &'static str {
        "scoped"
    }

    fn parallelism(&self) -> usize {
        self.threads
    }

    fn run_indexed(&self, tasks: usize, body: &(dyn Fn(usize) + Sync)) {
        if tasks == 0 {
            return;
        }
        if self.threads <= 1 || tasks == 1 {
            run_sequential_to_completion(tasks, body);
            return;
        }
        let workers = self.threads.min(tasks);
        let per_worker = tasks.div_ceil(workers);
        // Per-index catch_unwind upholds the trait contract a plain panic
        // would break: every index still runs exactly once even when an
        // earlier index of the same worker's block panicked, and the first
        // panic is re-raised only after every body completed.
        let first_panic: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>> = Mutex::new(None);
        crossbeam::thread::scope(|s| {
            for w in 0..workers {
                let first = w * per_worker;
                let last = ((w + 1) * per_worker).min(tasks);
                let first_panic = &first_panic;
                s.spawn(move |_| {
                    for index in first..last {
                        let outcome =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(index)));
                        if let Err(payload) = outcome {
                            let mut slot = first_panic.lock().expect("panic slot poisoned");
                            if slot.is_none() {
                                *slot = Some(payload);
                            }
                        }
                    }
                });
            }
        })
        .expect("scoped runtime worker died outside a task body");
        let payload = first_panic.lock().expect("panic slot poisoned").take();
        if let Some(payload) = payload {
            std::panic::resume_unwind(payload);
        }
    }
}

/// Which [`Runtime`] implementation the engine dispatches to. `Copy` so
/// configuration structs (the engine is two words, copied by value
/// everywhere) can carry it; the actual executors live in the process-wide
/// registry behind [`handle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RuntimeKind {
    /// Per-call scoped threads ([`ScopedFallback`]).
    Scoped,
    /// The persistent work-stealing pool ([`WorkStealing`]).
    #[default]
    Pool,
}

/// An explicit once-per-process cache of an environment-derived
/// configuration value.
///
/// `from_env`-style lookups are *deliberately* cached for the life of the
/// process: the executors they select are process-wide, so a mid-run
/// environment change silently forking the configuration would be worse than
/// ignoring it. This type makes that memoisation explicit (instead of a
/// `OnceLock` buried in a function body) and gives tests a
/// [`reset`](EnvCache::reset) escape hatch so cache semantics themselves are
/// testable without mutating the process environment.
#[derive(Debug, Default)]
pub struct EnvCache<T> {
    slot: Mutex<Option<T>>,
}

impl<T: Copy> EnvCache<T> {
    /// An empty cache; the first [`get_or_init`](EnvCache::get_or_init)
    /// fills it.
    pub const fn new() -> Self {
        Self {
            slot: Mutex::new(None),
        }
    }

    /// Returns the cached value, computing and storing it on first use.
    pub fn get_or_init(&self, init: impl FnOnce() -> T) -> T {
        *self
            .slot
            .lock()
            .expect("env cache poisoned")
            .get_or_insert_with(init)
    }

    /// Clears the cache so the next read re-runs its initialiser.
    ///
    /// Test-only: production code relies on the once-per-process read.
    #[doc(hidden)]
    pub fn reset(&self) {
        *self.slot.lock().expect("env cache poisoned") = None;
    }
}

/// The process-wide cache behind [`RuntimeKind::from_env`].
static ENV_RUNTIME_KIND: EnvCache<RuntimeKind> = EnvCache::new();

impl RuntimeKind {
    /// The runtime selected by the `SIDCO_RUNTIME` environment variable:
    /// `scoped` or `pool` (case-insensitive). Unset or unrecognised values
    /// fall back to [`RuntimeKind::Pool`]. Read **once per process** (through
    /// an explicit [`EnvCache`]) — later environment changes are ignored, so
    /// the process-wide executors can never disagree with the configuration
    /// that spawned them. Tests that need a different runtime pass one
    /// explicitly (constructor injection) instead of mutating the
    /// environment.
    pub fn from_env() -> Self {
        ENV_RUNTIME_KIND.get_or_init(|| Self::parse(std::env::var(RUNTIME_ENV_VAR).ok().as_deref()))
    }

    /// Parses a `SIDCO_RUNTIME` value: `scoped` or `pool`
    /// (case-insensitive); `None` and unrecognised values select the default
    /// [`RuntimeKind::Pool`]. Pure — the cache-free core of
    /// [`from_env`](RuntimeKind::from_env).
    pub fn parse(value: Option<&str>) -> Self {
        match value
            .unwrap_or_default()
            .trim()
            .to_ascii_lowercase()
            .as_str()
        {
            "scoped" => RuntimeKind::Scoped,
            _ => RuntimeKind::Pool,
        }
    }

    /// Clears the `SIDCO_RUNTIME` cache so the next
    /// [`from_env`](RuntimeKind::from_env) re-reads the environment.
    #[doc(hidden)]
    pub fn reset_env_cache_for_tests() {
        ENV_RUNTIME_KIND.reset();
    }

    /// The short name `handle(kind, …).name()` will report.
    pub fn as_str(&self) -> &'static str {
        match self {
            RuntimeKind::Scoped => "scoped",
            RuntimeKind::Pool => "pool",
        }
    }
}

/// Returns the process-wide shared runtime of the given kind and worker
/// budget. Instances are created on first request and live for the process
/// (so every engine configured with the same `(kind, threads)` shares one
/// pool — and the pool's workers are spawned exactly once, on its first
/// parallel job). `threads == 1` always returns the sequential scoped
/// runtime: there is nothing for a pool to do.
pub fn handle(kind: RuntimeKind, threads: usize) -> &'static dyn Runtime {
    assert!(threads >= 1, "a runtime needs at least one thread");
    static SEQUENTIAL: ScopedFallback = ScopedFallback { threads: 1 };
    if threads == 1 {
        return &SEQUENTIAL;
    }
    type Registry = Mutex<HashMap<(RuntimeKind, usize), &'static dyn Runtime>>;
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    let registry = REGISTRY.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = registry.lock().expect("runtime registry poisoned");
    *map.entry((kind, threads)).or_insert_with(|| match kind {
        RuntimeKind::Scoped => Box::leak(Box::new(ScopedFallback::new(threads))),
        RuntimeKind::Pool => Box::leak(Box::new(WorkStealing::new(threads))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn scoped_runs_every_index_exactly_once() {
        for threads in [1usize, 2, 3, 8] {
            let runtime = ScopedFallback::new(threads);
            assert_eq!(runtime.parallelism(), threads);
            for n in [0usize, 1, 2, 7, 100] {
                let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
                runtime.run_indexed(n, &|i| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                });
                assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
            }
        }
        assert_eq!(ScopedFallback::new(2).name(), "scoped");
        assert!(Runtime::stats(&ScopedFallback::new(2)).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn scoped_rejects_zero_threads() {
        ScopedFallback::new(0);
    }

    #[test]
    fn scoped_panics_propagate_after_every_index_ran() {
        // The contract the pool also honours: a panicking body must not
        // prevent the other indices of its worker's block from executing.
        for threads in [1usize, 3] {
            let runtime = ScopedFallback::new(threads);
            let hits: Vec<AtomicU64> = (0..40).map(|_| AtomicU64::new(0)).collect();
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                runtime.run_indexed(40, &|i| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                    assert!(i != 3, "index 3 exploded");
                });
            }));
            assert!(result.is_err(), "the panic must reach the caller");
            for (i, hit) in hits.iter().enumerate() {
                assert_eq!(hit.load(Ordering::Relaxed), 1, "index {i} at {threads}");
            }
        }
    }

    #[test]
    fn kind_names_and_default() {
        assert_eq!(RuntimeKind::Scoped.as_str(), "scoped");
        assert_eq!(RuntimeKind::Pool.as_str(), "pool");
        assert_eq!(RuntimeKind::default(), RuntimeKind::Pool);
    }

    #[test]
    fn kind_parsing_covers_every_spelling() {
        assert_eq!(RuntimeKind::parse(None), RuntimeKind::Pool);
        assert_eq!(RuntimeKind::parse(Some("")), RuntimeKind::Pool);
        assert_eq!(RuntimeKind::parse(Some("pool")), RuntimeKind::Pool);
        assert_eq!(RuntimeKind::parse(Some("scoped")), RuntimeKind::Scoped);
        assert_eq!(RuntimeKind::parse(Some(" SCOPED ")), RuntimeKind::Scoped);
        assert_eq!(RuntimeKind::parse(Some("threads")), RuntimeKind::Pool);
    }

    #[test]
    fn env_cache_memoises_until_reset() {
        let cache: EnvCache<u32> = EnvCache::new();
        assert_eq!(cache.get_or_init(|| 7), 7);
        // The second initialiser must not run: the first read is sticky.
        assert_eq!(cache.get_or_init(|| unreachable!("cache hit expected")), 7);
        cache.reset();
        assert_eq!(cache.get_or_init(|| 9), 9);
    }

    #[test]
    fn handle_registry_shares_instances() {
        let a = handle(RuntimeKind::Pool, 2) as *const dyn Runtime;
        let b = handle(RuntimeKind::Pool, 2) as *const dyn Runtime;
        assert!(std::ptr::addr_eq(a, b), "same (kind, threads) must share");
        let scoped = handle(RuntimeKind::Scoped, 2);
        assert_eq!(scoped.name(), "scoped");
        assert_eq!(scoped.parallelism(), 2);
        // threads == 1 short-circuits to the sequential scoped runtime.
        let seq = handle(RuntimeKind::Pool, 1);
        assert_eq!(seq.name(), "scoped");
        assert_eq!(seq.parallelism(), 1);
    }

    #[test]
    fn pool_handle_executes_and_reports_stats() {
        let pool = handle(RuntimeKind::Pool, 2);
        let count = AtomicU64::new(0);
        pool.run_indexed(40, &|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 40);
        let stats = pool.stats().expect("pool keeps stats");
        assert_eq!(stats.threads_spawned, 2);
        assert!(stats.chunks_executed >= 40);
    }
}
