//! The persistent NUMA-aware work-stealing pool.
//!
//! # Architecture
//!
//! * **Lazy one-time spawn** — the pool is constructed empty (two words and a
//!   topology); the first parallel job spawns its OS worker threads, and no
//!   later call ever spawns again ([`PoolStats::threads_spawned`] pins this
//!   down in tests).
//! * **Chase–Lev deques** — each worker owns a [`crossbeam::deque::Worker`]
//!   it pushes split-off subranges onto (owner-LIFO, thief-FIFO); every other
//!   worker holds a [`crossbeam::deque::Stealer`] onto it.
//! * **NUMA placement** — a job's chunk index space is partitioned into
//!   contiguous per-socket ranges by [`NumaTopology::chunk_node`] (the
//!   first-touch page-ownership model) and submitted to **per-socket
//!   injectors**. Workers are pinned (logically) to sockets by
//!   [`NumaTopology::worker_node`] and look for work in locality order: own
//!   deque → own socket's injector → same-socket siblings → remote sockets.
//!   Only the last hop crosses the interconnect, and it is counted
//!   separately ([`PoolStats::remote_steals`]).
//! * **Parked idle workers** — out-of-work workers sleep on a condvar after
//!   re-checking every queue under the sleep lock (no lost wakeups);
//!   submission and task splitting wake them.
//!
//! # Determinism
//!
//! The pool never decides *what* the chunks are — callers fix the chunk
//! decomposition as a function of input length alone and give every chunk its
//! own output slot. The pool only decides *where and when* each chunk runs,
//! so results are bit-identical across worker counts, steal orders, and
//! socket layouts. (See `sidco_tensor::parallel` for the full argument.)

use crate::numa::NumaTopology;
use crate::stats::{PoolStats, StatCells};
use crate::sync::atomic::{fence, AtomicUsize, Ordering};
use crate::sync::{thread, Arc, Condvar, Mutex};
use crate::Runtime;
use crossbeam::deque::{Injector, Stealer, Worker};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::OnceLock;

/// A unit of pool work: a contiguous range of chunk indices of one job.
struct Task {
    job: Arc<JobShared>,
    start: usize,
    end: usize,
}

/// Shared state of one `run_indexed` call.
struct JobShared {
    /// The caller's chunk body with its lifetime erased. Safety: `run_indexed`
    /// blocks until `remaining == 0`, and every task dereferences the body
    /// *before* decrementing `remaining`, so the reference is never used after
    /// the borrow it was created from ends.
    body: &'static (dyn Fn(usize) + Sync),
    /// Total chunks in the job (for placement of split-off ranges).
    total: usize,
    /// Chunks not yet executed; the job is complete at zero.
    remaining: AtomicUsize,
    /// Completion flag + condvar the submitting caller blocks on.
    done: Mutex<bool>,
    done_cv: Condvar,
    /// First panic payload raised by a chunk body, re-raised by the caller.
    panic: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
}

/// State shared by the workers, the stealers and the submitting callers.
struct PoolShared {
    topology: NumaTopology,
    /// Socket each worker is pinned to (index = worker id).
    worker_socket: Vec<usize>,
    /// One submission queue per socket.
    injectors: Vec<Injector<Task>>,
    /// One stealer per worker deque.
    stealers: Vec<Stealer<Task>>,
    /// Sleep lock: guards the shutdown flag and serialises the park/wake
    /// protocol (workers re-check all queues under this lock before waiting,
    /// so a wake posted after a push can never be lost).
    sleep: Mutex<bool>,
    wake: Condvar,
    /// Number of workers currently blocked in `wake.wait` (wake hint).
    sleepers: AtomicUsize,
    stats: StatCells,
}

/// Who is executing: a pool worker (with its own deque) or a helping caller.
enum Executor<'a> {
    Worker { id: usize, deque: &'a Worker<Task> },
    Caller,
}

/// The persistent NUMA-aware work-stealing runtime.
///
/// Cheap to create; worker threads are spawned lazily by the first parallel
/// job and reused for every job thereafter. Dropping the pool asks the
/// workers to exit at their next wake-up (the process-global pools returned
/// by [`crate::handle`] are never dropped).
pub struct WorkStealing {
    threads: usize,
    topology: NumaTopology,
    shared: OnceLock<Arc<PoolShared>>,
}

impl std::fmt::Debug for WorkStealing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkStealing")
            .field("threads", &self.threads)
            .field("topology", &self.topology)
            .field("spawned", &self.is_spawned())
            .finish()
    }
}

impl WorkStealing {
    /// A pool of `threads` workers on the host topology
    /// ([`NumaTopology::detect`]).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        Self::with_topology(threads, NumaTopology::detect())
    }

    /// A pool of `threads` workers pinned across an explicit topology
    /// (synthetic topologies let tests exercise multi-socket placement on any
    /// host).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn with_topology(threads: usize, topology: NumaTopology) -> Self {
        assert!(threads >= 1, "a pool needs at least one worker");
        Self {
            threads,
            topology,
            shared: OnceLock::new(),
        }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The topology workers and chunks are pinned to.
    pub fn topology(&self) -> &NumaTopology {
        &self.topology
    }

    /// Whether the worker threads have been spawned yet.
    pub fn is_spawned(&self) -> bool {
        self.shared.get().is_some()
    }

    /// A snapshot of the pool's lifetime counters (all zero before the lazy
    /// spawn).
    ///
    /// The snapshot is taken under the sleep lock — the same lock every
    /// park/unpark transition holds — so it is internally consistent:
    /// `parks - unparks == currently_parked` holds in every snapshot, even
    /// while workers are going to sleep or waking up concurrently.
    pub fn stats(&self) -> PoolStats {
        match self.shared.get() {
            Some(shared) => {
                let _guard = shared.sleep.lock().expect("sleep lock poisoned");
                shared.stats.snapshot()
            }
            None => PoolStats {
                socket_chunks: vec![0; self.topology.nodes()],
                ..PoolStats::default()
            },
        }
    }

    /// Spawns the workers exactly once and returns the shared state.
    fn shared(&self) -> &Arc<PoolShared> {
        self.shared.get_or_init(|| {
            let sockets = self.topology.nodes();
            let worker_socket: Vec<usize> = (0..self.threads)
                .map(|w| self.topology.worker_node(w, self.threads))
                .collect();
            let deques: Vec<Worker<Task>> = (0..self.threads).map(|_| Worker::new_lifo()).collect();
            let stealers = deques.iter().map(Worker::stealer).collect();
            let shared = Arc::new(PoolShared {
                topology: self.topology.clone(),
                worker_socket,
                injectors: (0..sockets).map(|_| Injector::new()).collect(),
                stealers,
                sleep: Mutex::new(false),
                wake: Condvar::new(),
                sleepers: AtomicUsize::new(0),
                stats: StatCells::new(sockets),
            });
            for (id, deque) in deques.into_iter().enumerate() {
                let shared = Arc::clone(&shared);
                StatCells::bump(&shared.stats.threads_spawned);
                thread::Builder::new()
                    .name(format!("sidco-pool-{id}"))
                    .spawn(move || worker_loop(&shared, id, &deque))
                    // INVARIANT: spawn only fails on OS resource exhaustion;
                    // a pool that cannot start its workers cannot run at all.
                    .expect("failed to spawn pool worker");
            }
            shared
        })
    }
}

impl Drop for WorkStealing {
    fn drop(&mut self) {
        if let Some(shared) = self.shared.get() {
            *shared.sleep.lock().expect("sleep lock poisoned") = true;
            shared.wake.notify_all();
        }
    }
}

impl Runtime for WorkStealing {
    fn name(&self) -> &'static str {
        "pool"
    }

    fn parallelism(&self) -> usize {
        self.threads
    }

    fn register_trace_tracks(&self) {
        let sink = trace_sink();
        if sink.enabled() && self.threads > 1 {
            for id in 0..self.threads {
                let _ = sink.track(&format!("sidco-pool-{id}"), sidco_trace::Lane::Real);
            }
        }
    }

    fn run_indexed(&self, tasks: usize, body: &(dyn Fn(usize) + Sync)) {
        if tasks == 0 {
            return;
        }
        if tasks == 1 || self.threads <= 1 {
            crate::run_sequential_to_completion(tasks, body);
            return;
        }
        let shared = self.shared();
        StatCells::bump(&shared.stats.jobs);
        // Spans the whole dispatch→completion window on the caller's track.
        let _job_span = trace_sink().real_span("pool/job");
        // SAFETY: the erased reference is only dereferenced by tasks of this
        // job, every task dereferences it before decrementing `remaining`,
        // and this function blocks until `remaining == 0` — so no use can
        // outlive the `body` borrow.
        let body_static: &'static (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(body)
        };
        let job = Arc::new(JobShared {
            body: body_static,
            total: tasks,
            remaining: AtomicUsize::new(tasks),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
            panic: Mutex::new(None),
        });

        // Submit each socket's chunk range to its injector, pre-split into one
        // subrange per pinned worker so every worker can start without
        // stealing; stealing rebalances from there.
        for socket in 0..shared.topology.nodes() {
            let range = shared.topology.node_range(socket, tasks);
            if range.is_empty() {
                continue;
            }
            // Relaxed: pure observation counter; readers take the sleep
            // lock for cross-counter consistency (see `StatCells::snapshot`).
            shared.stats.socket_chunks[socket].fetch_add(range.len() as u64, Ordering::Relaxed);
            let pinned = shared
                .worker_socket
                .iter()
                .filter(|&&s| s == socket)
                .count()
                .max(1);
            let pieces = pinned.min(range.len());
            let per = range.len().div_ceil(pieces);
            let mut start = range.start;
            while start < range.end {
                let end = (start + per).min(range.end);
                shared.injectors[socket].push(Task {
                    job: Arc::clone(&job),
                    start,
                    end,
                });
                start = end;
            }
        }
        // Wake every parked worker (under the sleep lock, after the pushes,
        // so the park-side re-check cannot miss the new work).
        {
            let _guard = shared.sleep.lock().expect("sleep lock poisoned");
            shared.wake.notify_all();
        }

        // Help until the job completes: the caller steals like a worker
        // (without a deque of its own), then blocks on the completion condvar
        // once the queues run dry — remaining chunks are in flight on workers.
        loop {
            if *job.done.lock().expect("job lock poisoned") {
                break;
            }
            match find_task(shared, &Executor::Caller) {
                Some(task) => execute(shared, &Executor::Caller, task),
                None => {
                    let mut done = job.done.lock().expect("job lock poisoned");
                    while !*done {
                        done = job.done_cv.wait(done).expect("job lock poisoned");
                    }
                    break;
                }
            }
        }
        let payload = job.panic.lock().expect("panic lock poisoned").take();
        if let Some(payload) = payload {
            std::panic::resume_unwind(payload);
        }
    }

    fn stats(&self) -> Option<PoolStats> {
        Some(self.stats())
    }
}

/// Physically pins a freshly spawned worker to the CPUs of its assigned NUMA
/// node, making the logical `worker_node` placement real. Failure (synthetic
/// topology, unsupported platform) is recorded by omission: only successful
/// pins bump `workers_pinned`, and the worker runs unpinned — placement is a
/// performance measure, never a correctness one.
#[cfg(not(sidco_loom))]
fn pin_worker(shared: &PoolShared, id: usize) {
    let socket = shared.worker_socket[id];
    if crate::affinity::pin_current_thread(shared.topology.node_cpu_ids(socket)) {
        StatCells::bump(&shared.stats.workers_pinned);
    }
}

/// Under the loom model the "threads" are baton-serialized simulations — a
/// real affinity syscall would pin the single OS thread running the whole
/// model, so pinning is compiled out.
#[cfg(sidco_loom)]
fn pin_worker(_shared: &PoolShared, _id: usize) {}

/// The recording sink for pool lifecycle events. One relaxed atomic load when
/// tracing is disabled; events land on the calling thread's own track
/// (workers are named `sidco-pool-{id}`, so each gets a distinct track).
#[cfg(not(sidco_loom))]
fn trace_sink() -> sidco_trace::TraceSink {
    sidco_trace::global_sink()
}

/// Under the loom model the baton-serialized "threads" must not touch the
/// process-wide trace registry (a real mutex), so tracing is compiled out.
#[cfg(sidco_loom)]
fn trace_sink() -> sidco_trace::TraceSink {
    sidco_trace::TraceSink::noop()
}

/// Record an instantaneous lifecycle event (steal, park, unpark) on the
/// calling thread's real-time track.
fn trace_instant(name: &'static str) {
    let sink = trace_sink();
    if sink.enabled() {
        let track = sink.thread_track();
        sink.instant(track, name, sink.real_now());
    }
}

/// The worker main loop: find a task in locality order or park.
fn worker_loop(shared: &Arc<PoolShared>, id: usize, deque: &Worker<Task>) {
    pin_worker(shared, id);
    let me = Executor::Worker { id, deque };
    loop {
        match find_task(shared, &me) {
            Some(task) => execute(shared, &me, task),
            None => {
                let mut shutdown = shared.sleep.lock().expect("sleep lock poisoned");
                if *shutdown {
                    return;
                }
                // Eventcount protocol: register as a sleeper *before* the
                // queue re-check. An exposer pushes, fences, then reads
                // `sleepers`; reading 0 there means our registration had not
                // happened yet, which orders our re-check after its push —
                // so we see the work here. Reading >0 makes it take the
                // sleep lock and notify, which covers the waiting branch.
                shared.sleepers.fetch_add(1, Ordering::SeqCst);
                fence(Ordering::SeqCst);
                if has_work(shared) {
                    shared.sleepers.fetch_sub(1, Ordering::SeqCst);
                    continue;
                }
                // Park accounting transitions under the sleep lock (held
                // here and re-acquired by the condvar wait), paired with the
                // `currently_parked` gauge so lock-consistent snapshots
                // always balance: parks - unparks == currently_parked.
                StatCells::bump(&shared.stats.parks);
                shared
                    .stats
                    .currently_parked
                    .fetch_add(1, Ordering::Relaxed);
                trace_instant("park");
                shutdown = shared.wake.wait(shutdown).expect("sleep lock poisoned");
                trace_instant("unpark");
                // SeqCst: pairs with the SeqCst fence + sleepers load on the
                // submit side, closing the park/submit race (eventcount).
                shared.sleepers.fetch_sub(1, Ordering::SeqCst);
                // Relaxed: gauge updated under the sleep lock; readers also
                // hold it (see `WorkStealing::stats`).
                shared
                    .stats
                    .currently_parked
                    .fetch_sub(1, Ordering::Relaxed);
                StatCells::bump(&shared.stats.unparks);
                if *shutdown {
                    return;
                }
            }
        }
    }
}

/// Any queue non-empty?
fn has_work(shared: &PoolShared) -> bool {
    shared.injectors.iter().any(|i| !i.is_empty()) || shared.stealers.iter().any(|s| !s.is_empty())
}

/// Looks for a task in locality order. For a worker: own deque, own socket's
/// injector, same-socket siblings, then remote sockets (injectors and
/// deques). A helping caller starts at the injectors of socket 0.
///
/// Stats attribution: only *pinned workers* count cross-socket takes as
/// [`remote_steals`](PoolStats::remote_steals) — a helping caller has no
/// home socket, so its takes land in `injector_pops` / `sibling_steals`
/// whichever socket they came from, keeping the remote counter a pure
/// measure of worker traffic across the interconnect.
fn find_task(shared: &PoolShared, who: &Executor<'_>) -> Option<Task> {
    let (id, socket) = match who {
        Executor::Worker { id, deque } => {
            if let Some(task) = deque.pop() {
                StatCells::bump(&shared.stats.local_pops);
                return Some(task);
            }
            (Some(*id), shared.worker_socket[*id])
        }
        Executor::Caller => (None, 0),
    };
    let pinned = id.is_some();
    let sockets = shared.topology.nodes();
    // Own socket first (injector, then siblings), then the rest in order.
    for hop in 0..sockets {
        let s = (socket + hop) % sockets;
        let local = hop == 0 || !pinned;
        if let Some(task) = shared.injectors[s].steal().success() {
            StatCells::bump(if local {
                &shared.stats.injector_pops
            } else {
                trace_instant("steal:remote");
                &shared.stats.remote_steals
            });
            return Some(task);
        }
        for (victim, stealer) in shared.stealers.iter().enumerate() {
            if Some(victim) == id || shared.worker_socket[victim] != s {
                continue;
            }
            if let Some(task) = stealer.steal().success() {
                StatCells::bump(if local {
                    trace_instant("steal:sibling");
                    &shared.stats.sibling_steals
                } else {
                    trace_instant("steal:remote");
                    &shared.stats.remote_steals
                });
                return Some(task);
            }
        }
    }
    None
}

/// Executes a range task: split off the back half (repeatedly) for thieves,
/// run the front chunk, then loop back to the owner's deque.
fn execute(shared: &PoolShared, who: &Executor<'_>, task: Task) {
    let Task {
        job,
        start,
        mut end,
    } = task;
    while end - start > 1 {
        let mid = start + (end - start) / 2;
        expose(
            shared,
            who,
            Task {
                job: Arc::clone(&job),
                start: mid,
                end,
            },
        );
        end = mid;
    }
    let index = start;
    let outcome = {
        // Spans the chunk body on the executing thread's track.
        let _chunk_span = trace_sink().real_span("chunk");
        catch_unwind(AssertUnwindSafe(|| (job.body)(index)))
    };
    StatCells::bump(&shared.stats.chunks);
    if let Err(payload) = outcome {
        let mut slot = job.panic.lock().expect("panic lock poisoned");
        if slot.is_none() {
            *slot = Some(payload);
        }
    }
    // AcqRel: the release publishes this task's writes to whoever takes the
    // completion edge; the acquire makes the last decrementer see them all.
    if job.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
        *job.done.lock().expect("job lock poisoned") = true;
        job.done_cv.notify_all();
    }
}

/// Makes a split-off task stealable: workers push onto their own deque (the
/// Chase–Lev fast path), a helping caller routes it to the injector of the
/// socket owning the range's pages. Wakes a sleeper if any.
fn expose(shared: &PoolShared, who: &Executor<'_>, task: Task) {
    match who {
        Executor::Worker { deque, .. } => deque.push(task),
        Executor::Caller => {
            let socket = shared.topology.chunk_node(task.start, task.job.total);
            shared.injectors[socket].push(task);
        }
    }
    // Eventcount fast path: parkers register in `sleepers` *before* their
    // locked queue re-check (see `worker_loop`), so an unlocked SeqCst read
    // of 0 here proves no parker could miss the push above — any later
    // registrant re-checks the queues after its registration, which the
    // SeqCst fence pair orders after our push. Only when a sleeper might be
    // waiting do we take the (pool-global) sleep lock to notify; this keeps
    // the per-split hot path lock-free while the pool is busy.
    fence(Ordering::SeqCst);
    if shared.sleepers.load(Ordering::SeqCst) > 0 {
        let _guard = shared.sleep.lock().expect("sleep lock poisoned");
        shared.wake.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn pool_runs_every_index_exactly_once() {
        let pool = WorkStealing::with_topology(4, NumaTopology::synthetic(2, 2));
        for n in [1usize, 2, 3, 7, 64, 500] {
            let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            pool.run_indexed(n, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, hit) in hits.iter().enumerate() {
                assert_eq!(hit.load(Ordering::Relaxed), 1, "index {i} of {n}");
            }
        }
    }

    #[test]
    fn pool_spawns_lazily_and_exactly_once() {
        let pool = WorkStealing::with_topology(3, NumaTopology::synthetic(1, 4));
        assert!(!pool.is_spawned());
        assert_eq!(pool.stats().threads_spawned, 0);
        // A single task runs inline and must not spawn anything.
        pool.run_indexed(1, &|_| {});
        assert!(!pool.is_spawned());
        for _ in 0..5 {
            pool.run_indexed(32, &|_| {});
        }
        let stats = pool.stats();
        assert!(pool.is_spawned());
        assert_eq!(stats.threads_spawned, 3);
        assert_eq!(stats.jobs, 5);
        assert_eq!(stats.chunks_executed, 5 * 32);
        assert_eq!(stats.socket_chunks, vec![5 * 32]);
    }

    #[test]
    fn multi_socket_submission_splits_by_ownership() {
        let pool = WorkStealing::with_topology(4, NumaTopology::synthetic(2, 8));
        pool.run_indexed(100, &|_| {});
        let stats = pool.stats();
        assert_eq!(stats.socket_chunks, vec![50, 50]);
        assert_eq!(stats.chunks_executed, 100);
    }

    #[test]
    fn pool_results_are_written_to_caller_slots() {
        let pool = WorkStealing::new(2);
        let slots: Vec<Mutex<Option<u64>>> = (0..200).map(|_| Mutex::new(None)).collect();
        pool.run_indexed(200, &|i| {
            *slots[i].lock().expect("slot lock poisoned") = Some((i as u64) * 3);
        });
        for (i, slot) in slots.iter().enumerate() {
            assert_eq!(
                slot.lock().expect("slot lock poisoned").unwrap(),
                (i as u64) * 3
            );
        }
    }

    #[test]
    fn concurrent_jobs_from_many_callers_all_complete() {
        let pool = Arc::new(WorkStealing::with_topology(
            3,
            NumaTopology::synthetic(1, 4),
        ));
        let total = Arc::new(AtomicU64::new(0));
        crossbeam::thread::scope(|s| {
            for _ in 0..4 {
                let pool = Arc::clone(&pool);
                let total = Arc::clone(&total);
                s.spawn(move |_| {
                    for _ in 0..10 {
                        pool.run_indexed(50, &|_| {
                            total.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(total.load(Ordering::Relaxed), 4 * 10 * 50);
    }

    #[test]
    fn panics_in_chunk_bodies_propagate_to_the_caller() {
        let pool = WorkStealing::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run_indexed(64, &|i| {
                assert!(i != 17, "chunk 17 exploded");
            });
        }));
        assert!(result.is_err(), "the chunk panic must reach the caller");
        // The pool survives and keeps executing later jobs.
        let count = AtomicU64::new(0);
        pool.run_indexed(64, &|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn park_accounting_balances_in_every_snapshot() {
        let pool = WorkStealing::with_topology(4, NumaTopology::synthetic(2, 2));
        for _ in 0..20 {
            pool.run_indexed(64, &|_| {});
            let stats = pool.stats();
            assert_eq!(
                stats.parks - stats.unparks,
                stats.currently_parked,
                "lock-consistent snapshots must balance parks against wakes"
            );
        }
        // Let the workers drain and park; the balance must keep holding as
        // they transition to sleep.
        for _ in 0..50 {
            let stats = pool.stats();
            assert_eq!(stats.parks - stats.unparks, stats.currently_parked);
            if stats.currently_parked == 4 {
                break;
            }
            std::thread::yield_now();
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        WorkStealing::new(0);
    }
}
