//! Bucket-completion rendezvous for overlapped trainer dispatch.
//!
//! When the trainer fans a step's per-worker, per-bucket compressions out
//! onto the pool as one `run_indexed` job, it needs to know the order in
//! which *buckets* (not individual tasks) finished: the collective scheduler
//! releases a bucket to the wire once every worker's shard of it is
//! compressed. [`BucketRendezvous`] is that join point — each task calls
//! [`arrive`](BucketRendezvous::arrive) for its bucket, the last arrival
//! completes the bucket and appends it to the completion order, and the
//! caller reads the order back after the job (or blocks on
//! [`wait_all`](BucketRendezvous::wait_all) when it overlaps other work).
//!
//! The completion order is *observational*: it feeds `TrainingReport`
//! diagnostics so the measured release order can be compared against the
//! charged `bucket_ready_times` order. Numerics never depend on it — the
//! trainer merges results in a fixed serial order regardless of which bucket
//! won the race.

use crate::sync::atomic::{AtomicUsize, Ordering};
use crate::sync::{Condvar, Mutex};

/// A reusable N-buckets × M-arrivals join point (see the module docs).
///
/// Loom-modeled in `tests/loom_pool.rs`: every interleaving of concurrent
/// arrivals completes each bucket exactly once, wakes `wait_all`, and records
/// a permutation of the bucket indices.
#[derive(Debug)]
pub struct BucketRendezvous {
    arrivals_per_bucket: usize,
    /// Outstanding arrivals per bucket; the task that decrements a cell to
    /// zero is that bucket's completer.
    remaining: Vec<AtomicUsize>,
    /// Bucket indices in completion order, appended by each completer.
    order: Mutex<Vec<usize>>,
    /// Signalled (via `notify_all`) when the last bucket completes.
    all_done: Condvar,
}

impl BucketRendezvous {
    /// Creates a rendezvous expecting `arrivals_per_bucket` arrivals on each
    /// of `buckets` buckets.
    ///
    /// # Panics
    /// If `arrivals_per_bucket` is zero — a bucket that can never complete
    /// would deadlock [`wait_all`](Self::wait_all).
    pub fn new(buckets: usize, arrivals_per_bucket: usize) -> Self {
        assert!(
            arrivals_per_bucket > 0,
            "a bucket with zero expected arrivals can never complete"
        );
        Self {
            arrivals_per_bucket,
            remaining: (0..buckets)
                .map(|_| AtomicUsize::new(arrivals_per_bucket))
                .collect(),
            order: Mutex::new(Vec::with_capacity(buckets)),
            all_done: Condvar::new(),
        }
    }

    /// Number of buckets this rendezvous joins.
    pub fn buckets(&self) -> usize {
        self.remaining.len()
    }

    /// Expected arrivals per bucket.
    pub fn arrivals_per_bucket(&self) -> usize {
        self.arrivals_per_bucket
    }

    /// Records one arrival on `bucket`. Returns `true` exactly once per
    /// bucket per round — for the arrival that completed it (and appended it
    /// to the completion order).
    ///
    /// # Panics
    /// If `bucket` is out of range, or on over-arrival (more than
    /// `arrivals_per_bucket` arrivals in one round — the counter would wrap).
    pub fn arrive(&self, bucket: usize) -> bool {
        // AcqRel: the release half publishes this task's writes (its
        // compression result) to whoever observes the completion; the acquire
        // half on the *final* decrement orders the completer after every
        // earlier arrival, so completion happens-after all M tasks' work.
        let prev = self.remaining[bucket].fetch_sub(1, Ordering::AcqRel);
        assert!(prev > 0, "over-arrival on bucket {bucket}");
        if prev != 1 {
            return false;
        }
        let mut order = self
            .order
            .lock()
            // INVARIANT: completers only append to the Vec; no panic can
            // poison this lock short of an allocation failure aborting.
            .expect("rendezvous order lock poisoned");
        order.push(bucket);
        if order.len() == self.remaining.len() {
            // Last bucket overall: wake a blocked `wait_all`. Signalled while
            // holding the lock, so the waiter cannot miss it between its
            // predicate check and its wait.
            self.all_done.notify_all();
        }
        true
    }

    /// Blocks until every bucket has completed, then returns the bucket
    /// indices in completion order (a permutation of `0..buckets()`).
    pub fn wait_all(&self) -> Vec<usize> {
        let mut order = self
            .order
            .lock()
            // INVARIANT: see `arrive` — the critical sections cannot panic.
            .expect("rendezvous order lock poisoned");
        while order.len() < self.remaining.len() {
            order = self
                .all_done
                .wait(order)
                // INVARIANT: same lock, same non-poisoning critical sections.
                .expect("rendezvous order lock poisoned");
        }
        order.clone()
    }

    /// Returns the completion order so far without blocking (complete iff its
    /// length equals [`buckets`](Self::buckets)).
    pub fn completion_order(&self) -> Vec<usize> {
        self.order
            .lock()
            // INVARIANT: see `arrive` — the critical sections cannot panic.
            .expect("rendezvous order lock poisoned")
            .clone()
    }

    /// Re-arms the rendezvous for another round of arrivals, clearing the
    /// completion order.
    ///
    /// The caller must be quiescent: no concurrent `arrive`/`wait_all` may be
    /// in flight (the trainer calls this between iterations, after the
    /// `run_indexed` barrier has already joined every task).
    pub fn reset(&self) {
        let mut order = self
            .order
            .lock()
            // INVARIANT: see `arrive` — the critical sections cannot panic.
            .expect("rendezvous order lock poisoned");
        order.clear();
        for cell in &self.remaining {
            // Release: pairs with the AcqRel decrements of the next round, so
            // arrivals observe the refilled counter, not a stale zero.
            cell.store(self.arrivals_per_bucket, Ordering::Release);
        }
    }
}

#[cfg(all(test, not(sidco_loom)))]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_threaded_round_trip_and_reset() {
        let rv = BucketRendezvous::new(3, 2);
        assert_eq!(rv.buckets(), 3);
        assert_eq!(rv.arrivals_per_bucket(), 2);
        // Complete buckets in the order 1, 0, 2.
        assert!(!rv.arrive(1));
        assert!(rv.arrive(1));
        assert!(!rv.arrive(0));
        assert!(rv.arrive(0));
        assert!(!rv.arrive(2));
        assert_eq!(rv.completion_order(), vec![1, 0]);
        assert!(rv.arrive(2));
        assert_eq!(rv.wait_all(), vec![1, 0, 2]);
        rv.reset();
        assert_eq!(rv.completion_order(), Vec::<usize>::new());
        assert!(!rv.arrive(2));
        assert!(rv.arrive(2));
        assert!(!rv.arrive(0));
        assert!(rv.arrive(0));
        assert!(!rv.arrive(1));
        assert!(rv.arrive(1));
        assert_eq!(rv.wait_all(), vec![2, 0, 1]);
    }

    #[test]
    fn concurrent_arrivals_complete_each_bucket_exactly_once() {
        let buckets = 4;
        let arrivals = 8;
        let rv = Arc::new(BucketRendezvous::new(buckets, arrivals));
        let handles: Vec<_> = (0..arrivals)
            .map(|_| {
                let rv = Arc::clone(&rv);
                std::thread::spawn(move || {
                    (0..buckets).map(|b| rv.arrive(b)).collect::<Vec<bool>>()
                })
            })
            .collect();
        let order = rv.wait_all();
        let mut completions = vec![0usize; buckets];
        for handle in handles {
            // INVARIANT: the arriving threads only touch the rendezvous and
            // cannot panic.
            let flags = handle.join().expect("arriver panicked");
            for (bucket, was_completer) in flags.into_iter().enumerate() {
                completions[bucket] += usize::from(was_completer);
            }
        }
        assert_eq!(completions, vec![1; buckets]);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..buckets).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "zero expected arrivals")]
    fn zero_arrivals_is_rejected() {
        let _ = BucketRendezvous::new(2, 0);
    }

    #[test]
    #[should_panic(expected = "over-arrival")]
    fn over_arrival_is_detected() {
        let rv = BucketRendezvous::new(1, 1);
        assert!(rv.arrive(0));
        let _ = rv.arrive(0);
    }
}
