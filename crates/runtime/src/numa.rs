//! NUMA topology model: which socket owns which CPUs, and — under the
//! first-touch page-placement model — which socket owns which chunk of a large
//! buffer.
//!
//! Discovery reads `/sys/devices/system/node` when present (Linux exposes one
//! `node<N>` directory per NUMA node with a `cpulist` file); on other
//! platforms, or when the sysfs tree is absent or malformed, a synthetic
//! single-node topology spanning all hardware threads is used instead. Tests
//! and simulations can construct arbitrary synthetic topologies with
//! [`NumaTopology::synthetic`].
//!
//! # Placement model
//!
//! The executor assumes large gradient buffers are **first-touch distributed**:
//! pages are owned by the socket whose CPUs initialised them, and a buffer
//! written by a parallel loop ends up split into contiguous per-socket ranges
//! proportional to each socket's CPU share. [`NumaTopology::chunk_node`] maps a
//! chunk index to the socket owning its pages under that model, and
//! [`NumaTopology::worker_node`] pins pool workers to sockets with the same
//! proportional split — so a worker's *local* deque receives the chunks whose
//! pages its socket owns, and only work stealing crosses the interconnect.
//!
//! Placement affects **scheduling only**, never results: the chunk
//! decomposition and the chunk-order merge are fixed upstream (see
//! `sidco_tensor::parallel`), so outputs are bit-identical whatever socket
//! executes a chunk.

use std::fs;
use std::path::Path;

/// One NUMA node (socket) of the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NumaNode {
    /// The kernel's node id (the `N` in `/sys/devices/system/node/nodeN`).
    pub id: usize,
    /// Number of CPUs (hardware threads) on this node.
    pub cpus: usize,
}

/// The host's NUMA layout: one entry per socket, in kernel node-id order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NumaTopology {
    nodes: Vec<NumaNode>,
    /// The concrete CPU ids of each node, parallel to `nodes` — the mask
    /// [`crate::affinity::pin_current_thread`] pins pool workers to. Sysfs
    /// discovery reads them from `cpulist`; synthetic topologies number CPUs
    /// sequentially across nodes (node 0 gets `0..c`, node 1 `c..2c`, …).
    cpu_ids: Vec<Vec<usize>>,
}

impl NumaTopology {
    /// The sysfs root scanned by [`detect`](Self::detect).
    pub const SYSFS_ROOT: &'static str = "/sys/devices/system/node";

    /// Discovers the host topology from sysfs, falling back to a synthetic
    /// single-node topology spanning [`std::thread::available_parallelism`]
    /// CPUs when the sysfs tree is absent, unreadable, or empty.
    pub fn detect() -> Self {
        Self::from_sysfs(Path::new(Self::SYSFS_ROOT)).unwrap_or_else(|| {
            Self::synthetic(
                1,
                std::thread::available_parallelism().map_or(1, |n| n.get()),
            )
        })
    }

    /// Parses a sysfs NUMA tree (`node<N>/cpulist` per node). Returns `None`
    /// unless at least one node with at least one CPU is found.
    pub fn from_sysfs(root: &Path) -> Option<Self> {
        let entries = fs::read_dir(root).ok()?;
        let mut parsed: Vec<(NumaNode, Vec<usize>)> = Vec::new();
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_str()?;
            let Some(id) = name
                .strip_prefix("node")
                .and_then(|n| n.parse::<usize>().ok())
            else {
                continue;
            };
            let cpulist = fs::read_to_string(entry.path().join("cpulist")).ok()?;
            let ids = parse_cpulist(cpulist.trim())?;
            if !ids.is_empty() {
                let cpus = ids.len();
                parsed.push((NumaNode { id, cpus }, ids));
            }
        }
        if parsed.is_empty() {
            return None;
        }
        parsed.sort_by_key(|(n, _)| n.id);
        let (nodes, cpu_ids) = parsed.into_iter().unzip();
        Some(Self { nodes, cpu_ids })
    }

    /// A synthetic topology of `nodes` equal sockets with `cpus_per_node` CPUs
    /// each — for tests, simulations, and the non-Linux fallback.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` or `cpus_per_node` is zero.
    pub fn synthetic(nodes: usize, cpus_per_node: usize) -> Self {
        assert!(nodes >= 1, "a topology needs at least one node");
        assert!(cpus_per_node >= 1, "a node needs at least one CPU");
        Self {
            nodes: (0..nodes)
                .map(|id| NumaNode {
                    id,
                    cpus: cpus_per_node,
                })
                .collect(),
            cpu_ids: (0..nodes)
                .map(|id| (id * cpus_per_node..(id + 1) * cpus_per_node).collect())
                .collect(),
        }
    }

    /// Number of NUMA nodes (sockets).
    pub fn nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The per-node records, in kernel node-id order.
    pub fn node_list(&self) -> &[NumaNode] {
        &self.nodes
    }

    /// Total CPU count across all nodes.
    pub fn total_cpus(&self) -> usize {
        self.nodes.iter().map(|n| n.cpus).sum()
    }

    /// The concrete CPU ids of `node` — the affinity mask a worker pinned to
    /// that node should carry. Empty for out-of-range nodes. Synthetic
    /// topologies number CPUs sequentially, so the ids a test topology names
    /// need not exist on the host (pinning then degrades to a no-op, see
    /// [`crate::affinity::pin_current_thread`]).
    pub fn node_cpu_ids(&self, node: usize) -> &[usize] {
        self.cpu_ids.get(node).map_or(&[], Vec::as_slice)
    }

    /// The socket a pool worker is pinned to, when `total_workers` workers are
    /// spread across the sockets proportionally to their CPU counts (socket 0
    /// gets workers `0..w0`, socket 1 gets `w0..w1`, …).
    pub fn worker_node(&self, worker: usize, total_workers: usize) -> usize {
        self.proportional_owner(worker, total_workers)
    }

    /// The socket owning the pages of chunk `chunk` out of `total_chunks`,
    /// under the first-touch model (contiguous per-socket ranges proportional
    /// to CPU counts — the split a parallel initialisation pass produces).
    pub fn chunk_node(&self, chunk: usize, total_chunks: usize) -> usize {
        self.proportional_owner(chunk, total_chunks)
    }

    /// The contiguous index range of `0..total` owned by `node` under the
    /// proportional split used by [`worker_node`](Self::worker_node) and
    /// [`chunk_node`](Self::chunk_node).
    pub fn node_range(&self, node: usize, total: usize) -> std::ops::Range<usize> {
        self.boundary(node, total)..self.boundary(node + 1, total)
    }

    /// Index of the first item owned by `node` (== `total` past the last node).
    fn boundary(&self, node: usize, total: usize) -> usize {
        let node = node.min(self.nodes.len());
        let cum: usize = self.nodes[..node].iter().map(|n| n.cpus).sum();
        // Round half-up so boundaries are monotone and the last one is `total`.
        (total * cum + self.total_cpus() / 2) / self.total_cpus()
    }

    fn proportional_owner(&self, index: usize, total: usize) -> usize {
        if total == 0 || self.nodes.len() == 1 {
            return 0;
        }
        let index = index.min(total - 1);
        // The boundaries are monotone, so a linear scan over the (few) nodes
        // finds the owning range.
        for node in 0..self.nodes.len() {
            if index < self.boundary(node + 1, total) {
                return node;
            }
        }
        self.nodes.len() - 1
    }
}

impl Default for NumaTopology {
    /// [`NumaTopology::detect`].
    fn default() -> Self {
        Self::detect()
    }
}

/// Expands a sysfs `cpulist` string into the CPU ids it names (e.g.
/// `"0-3,8-11"` → `[0, 1, 2, 3, 8, 9, 10, 11]`). Returns `None` on malformed
/// input; an empty string is zero CPUs.
fn parse_cpulist(list: &str) -> Option<Vec<usize>> {
    if list.is_empty() {
        return Some(Vec::new());
    }
    let mut ids = Vec::new();
    for part in list.split(',') {
        let part = part.trim();
        match part.split_once('-') {
            Some((lo, hi)) => {
                let lo: usize = lo.trim().parse().ok()?;
                let hi: usize = hi.trim().parse().ok()?;
                if hi < lo {
                    return None;
                }
                ids.extend(lo..=hi);
            }
            None => {
                ids.push(part.parse().ok()?);
            }
        }
    }
    Some(ids)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpulist_parsing() {
        assert_eq!(parse_cpulist("0"), Some(vec![0]));
        assert_eq!(parse_cpulist("0-3"), Some(vec![0, 1, 2, 3]));
        assert_eq!(
            parse_cpulist("0-3,8-11"),
            Some(vec![0, 1, 2, 3, 8, 9, 10, 11])
        );
        assert_eq!(parse_cpulist("0, 2 , 4-5"), Some(vec![0, 2, 4, 5]));
        assert_eq!(parse_cpulist(""), Some(Vec::new()));
        assert_eq!(parse_cpulist("3-1"), None);
        assert_eq!(parse_cpulist("x"), None);
    }

    #[test]
    fn cpulist_rejects_malformed_ranges() {
        // Dangling or doubled separators are not silently truncated.
        assert_eq!(parse_cpulist("1-"), None);
        assert_eq!(parse_cpulist("-3"), None);
        assert_eq!(parse_cpulist("0--3"), None);
        assert_eq!(parse_cpulist("1-2-3"), None);
        assert_eq!(parse_cpulist(" "), None);
        assert_eq!(parse_cpulist(","), None);
        assert_eq!(parse_cpulist("0,,1"), None);
        // A degenerate range is one CPU, not zero.
        assert_eq!(parse_cpulist("5-5"), Some(vec![5]));
    }

    #[test]
    fn sysfs_parser_rejects_malformed_and_empty_trees() {
        let dir = std::env::temp_dir().join(format!("sidco-numa-bad-{}", std::process::id()));

        // A malformed cpulist poisons the whole detection, falling back to
        // the synthetic topology rather than mis-counting CPUs.
        let _ = fs::remove_dir_all(&dir);
        let node = dir.join("node0");
        fs::create_dir_all(&node).unwrap();
        fs::write(node.join("cpulist"), "0-\n").unwrap();
        assert_eq!(NumaTopology::from_sysfs(&dir), None);

        // A node directory without a cpulist file is equally malformed.
        fs::remove_file(node.join("cpulist")).unwrap();
        assert_eq!(NumaTopology::from_sysfs(&dir), None);

        // Nodes whose cpulist is empty hold zero CPUs; a tree with only
        // such nodes has nothing to schedule on.
        fs::write(node.join("cpulist"), "\n").unwrap();
        assert_eq!(NumaTopology::from_sysfs(&dir), None);

        // A directory with no node entries at all is not a NUMA tree.
        fs::remove_dir_all(&node).unwrap();
        fs::create_dir_all(&dir).unwrap();
        assert_eq!(NumaTopology::from_sysfs(&dir), None);

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn detect_always_yields_a_usable_topology() {
        let topo = NumaTopology::detect();
        assert!(topo.nodes() >= 1);
        assert!(topo.total_cpus() >= 1);
        assert_eq!(NumaTopology::default(), topo);
    }

    #[test]
    fn synthetic_topology_shape() {
        let topo = NumaTopology::synthetic(2, 8);
        assert_eq!(topo.nodes(), 2);
        assert_eq!(topo.total_cpus(), 16);
        assert_eq!(topo.node_list()[1], NumaNode { id: 1, cpus: 8 });
        // Synthetic CPU ids are sequential across the nodes.
        assert_eq!(topo.node_cpu_ids(0), (0..8).collect::<Vec<_>>());
        assert_eq!(topo.node_cpu_ids(1), (8..16).collect::<Vec<_>>());
        assert_eq!(topo.node_cpu_ids(2), &[] as &[usize]);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn synthetic_rejects_zero_nodes() {
        NumaTopology::synthetic(0, 4);
    }

    #[test]
    fn proportional_split_covers_everything_contiguously() {
        let topo = NumaTopology::synthetic(2, 8);
        for total in [1usize, 2, 3, 7, 64, 1000] {
            let mut seen = 0usize;
            let mut previous_owner = 0usize;
            for node in 0..topo.nodes() {
                let range = topo.node_range(node, total);
                assert_eq!(range.start, seen, "ranges must tile 0..{total}");
                seen = range.end;
                for i in range {
                    let owner = topo.chunk_node(i, total);
                    assert_eq!(owner, node);
                    assert!(owner >= previous_owner, "owners must be monotone");
                    previous_owner = owner;
                    assert_eq!(topo.worker_node(i, total), node);
                }
            }
            assert_eq!(seen, total);
        }
    }

    #[test]
    fn uneven_sockets_get_proportional_shares() {
        let topo = NumaTopology {
            nodes: vec![NumaNode { id: 0, cpus: 12 }, NumaNode { id: 1, cpus: 4 }],
            cpu_ids: vec![(0..12).collect(), (12..16).collect()],
        };
        // 3:1 CPU ratio → 3:1 chunk split.
        let range0 = topo.node_range(0, 16);
        let range1 = topo.node_range(1, 16);
        assert_eq!(range0, 0..12);
        assert_eq!(range1, 12..16);
    }

    #[test]
    fn single_node_owns_all_chunks() {
        let topo = NumaTopology::synthetic(1, 4);
        for i in 0..100 {
            assert_eq!(topo.chunk_node(i, 100), 0);
        }
        assert_eq!(topo.node_range(0, 100), 0..100);
    }

    #[test]
    fn sysfs_parser_reads_a_mock_tree() {
        let dir = std::env::temp_dir().join(format!("sidco-numa-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        for (node, cpus) in [("node0", "0-3\n"), ("node1", "4-7\n")] {
            let path = dir.join(node);
            fs::create_dir_all(&path).unwrap();
            fs::write(path.join("cpulist"), cpus).unwrap();
        }
        // Unrelated entries are skipped, like sysfs's `has_cpu`, `online`, …
        fs::write(dir.join("online"), "0-1\n").unwrap();
        let topo = NumaTopology::from_sysfs(&dir).expect("mock tree parses");
        assert_eq!(topo.nodes(), 2);
        assert_eq!(topo.total_cpus(), 8);
        // Concrete CPU ids come straight from each node's cpulist.
        assert_eq!(topo.node_cpu_ids(0), &[0, 1, 2, 3]);
        assert_eq!(topo.node_cpu_ids(1), &[4, 5, 6, 7]);
        let _ = fs::remove_dir_all(&dir);
        assert_eq!(
            NumaTopology::from_sysfs(Path::new("/nonexistent-sidco")),
            None
        );
    }
}
