//! Synchronisation facade of the runtime crate.
//!
//! Everything in `pool.rs` and `stats.rs` that synchronises threads — mutexes,
//! condvars, atomics, fences, thread spawns — imports from here instead of
//! `std::sync` directly. A normal build re-exports `std`; building with
//! `RUSTFLAGS="--cfg sidco_loom"` swaps in the vendored `loom` model-checker
//! shims, whose primitives behave exactly like `std` outside a model run and
//! become schedule points of the deterministic checker inside one (see
//! `crates/runtime/tests/loom_pool.rs`).
//!
//! Deliberately **not** routed through the facade:
//!
//! * `std::sync::OnceLock` — the pool's lazy-spawn cell. Loom model tests
//!   construct the pool and trigger the spawn on the root simulated thread
//!   before any concurrency starts, so the once-cell race is out of scope
//!   (and `OnceLock` has no loom analogue).
//! * `EnvCache` in `lib.rs` — process-environment memoisation, test-only
//!   mutation, nothing the pool's schedules touch.

#[cfg(not(sidco_loom))]
pub(crate) use std::sync::atomic;
#[cfg(not(sidco_loom))]
pub(crate) use std::sync::{Arc, Condvar, Mutex};
#[cfg(not(sidco_loom))]
pub(crate) use std::thread;

#[cfg(sidco_loom)]
pub(crate) use loom::sync::atomic;
#[cfg(sidco_loom)]
pub(crate) use loom::sync::{Arc, Condvar, Mutex};
#[cfg(sidco_loom)]
pub(crate) use loom::thread;
