//! Criterion micro-benchmark: compression latency across tensor sizes
//! (the measured counterpart of Figures 16/17 on the CPU).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sidco_core::compressor::CompressorKind;
use sidco_dist::simulate::build_compressor;
use sidco_models::synthetic::{GradientProfile, SyntheticGradientGenerator};
use sidco_stats::fit::SidKind;

const DELTA: f64 = 0.001;

fn bench_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthetic_tensor_sizes");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    // 0.26M and 2.6M elements match the two smaller sizes in Figure 16; the larger
    // paper sizes (26M / 260M) are covered by the analytic model in the experiments
    // binary to keep the bench run short.
    for &size in &[260_000usize, 2_600_000] {
        let mut generator = SyntheticGradientGenerator::new(size, GradientProfile::LaplaceLike, 13);
        let grad = generator.gradient(1_000).into_vec();
        group.throughput(Throughput::Elements(size as u64));
        for kind in [
            CompressorKind::TopK,
            CompressorKind::Dgc,
            CompressorKind::RedSync,
            CompressorKind::GaussianKSgd,
            CompressorKind::Sidco(SidKind::Exponential),
        ] {
            let label = format!("{}/{}el", kind.label(), size);
            group.bench_with_input(BenchmarkId::from_parameter(label), &size, |b, _| {
                let mut compressor = build_compressor(kind, 0).expect("compressed scheme");
                compressor.compress(&grad, DELTA);
                b.iter(|| compressor.compress(std::hint::black_box(&grad), DELTA));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sizes);
criterion_main!(benches);
