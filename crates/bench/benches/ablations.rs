//! Criterion micro-benchmark for the design-choice ablations called out in
//! DESIGN.md: stage count, gamma-fit variant, and Top-k selection algorithm.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sidco_core::sidco::{SidcoCompressor, SidcoConfig};
use sidco_core::Compressor;
use sidco_models::synthetic::{GradientProfile, SyntheticGradientGenerator};
use sidco_stats::fit::SidKind;
use sidco_tensor::topk::{top_k, TopKAlgorithm};

const DIM: usize = 1_000_000;
const DELTA: f64 = 0.001;

fn gradient() -> Vec<f32> {
    let mut generator = SyntheticGradientGenerator::new(DIM, GradientProfile::SparseGamma, 19);
    generator.gradient(2_000).into_vec()
}

fn bench_stage_count(c: &mut Criterion) {
    let grad = gradient();
    let mut group = c.benchmark_group("ablation_stage_count");
    group.throughput(Throughput::Elements(DIM as u64));
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for stages in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("sidco_e_M{stages}")),
            &stages,
            |b, &stages| {
                let config = SidcoConfig {
                    initial_stages: stages,
                    max_stages: stages,
                    ..SidcoConfig::exponential()
                };
                let mut compressor = SidcoCompressor::new(config);
                b.iter(|| compressor.compress(std::hint::black_box(&grad), DELTA));
            },
        );
    }
    group.finish();
}

fn bench_sid_variants(c: &mut Criterion) {
    let grad = gradient();
    let mut group = c.benchmark_group("ablation_sid_variant");
    group.throughput(Throughput::Elements(DIM as u64));
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for sid in SidKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("sidco_{sid}")),
            &sid,
            |b, &sid| {
                let mut compressor = SidcoCompressor::new(SidcoConfig::for_sid(sid));
                compressor.compress(&grad, DELTA);
                b.iter(|| compressor.compress(std::hint::black_box(&grad), DELTA));
            },
        );
    }
    group.finish();
}

fn bench_topk_algorithms(c: &mut Criterion) {
    let grad = gradient();
    let k = (DIM as f64 * 0.01) as usize;
    let mut group = c.benchmark_group("ablation_topk_algorithm");
    group.throughput(Throughput::Elements(DIM as u64));
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for algorithm in TopKAlgorithm::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{algorithm:?}")),
            &algorithm,
            |b, &algorithm| b.iter(|| top_k(std::hint::black_box(&grad), k, algorithm)),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_stage_count,
    bench_sid_variants,
    bench_topk_algorithms
);
criterion_main!(benches);
