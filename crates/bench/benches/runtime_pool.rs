//! Criterion micro-benchmarks of the persistent work-stealing runtime vs the
//! per-call scoped fallback — the numbers recorded in `BENCH_engine.json`.
//!
//! Two regimes bracket the design space:
//!
//! * **many-small-layers** — 256 layers of 64Ki elements, the layer-wise /
//!   per-layer-bucket regime where every `compress` call is short and the
//!   scoped runtime's per-call thread spawn+join storm dominates. This is the
//!   workload the pool exists for.
//! * **single-large** — one 16Mi-element gradient, the ImageNet regime where
//!   a call is long enough to amortise any dispatch cost and the two runtimes
//!   should converge.
//!
//! The pool's lifecycle counters (spawns, steals, parks, per-socket
//! placement) are printed after the sweep; on a multi-socket host the
//! per-socket chunk counts show the NUMA placement at work.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sidco_core::engine::{CompressionEngine, RuntimeKind};
use sidco_core::prelude::*;
use sidco_dist::cluster::ClusterConfig;
use sidco_dist::schedule::BucketPolicy;
use sidco_dist::trainer::{ModelTrainer, TrainerConfig};
use sidco_models::dataset::ClassificationDataset;
use sidco_models::mlp::Mlp;
use sidco_models::synthetic::{GradientProfile, SyntheticGradientGenerator};
use sidco_models::DifferentiableModel;
use std::sync::Arc;

/// Many-small-layer regime: layer count × per-layer elements = 16Mi total.
const LAYERS: usize = 256;
const LAYER_DIM: usize = 1 << 16;
/// Single-large regime: one tensor of the same total element count.
const LARGE_DIM: usize = 1 << 24;
const DELTA: f64 = 0.01;

fn layer_gradients() -> Vec<Vec<f32>> {
    (0..LAYERS)
        .map(|layer| {
            let mut generator = SyntheticGradientGenerator::new(
                LAYER_DIM,
                GradientProfile::LaplaceLike,
                11 + layer as u64,
            );
            generator.gradient(0).into_vec()
        })
        .collect()
}

fn large_gradient() -> Vec<f32> {
    let mut generator = SyntheticGradientGenerator::new(LARGE_DIM, GradientProfile::LaplaceLike, 7);
    generator.gradient(0).into_vec()
}

fn configurations() -> Vec<(RuntimeKind, usize)> {
    vec![
        (RuntimeKind::Scoped, 1),
        (RuntimeKind::Scoped, 2),
        (RuntimeKind::Scoped, 4),
        (RuntimeKind::Pool, 2),
        (RuntimeKind::Pool, 4),
    ]
}

fn bench_many_small_layers(c: &mut Criterion) {
    println!(
        "host parallelism: {} hardware threads",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let layers = layer_gradients();
    let mut group = c.benchmark_group("runtime_many_small_layers_256x64Ki");
    group.throughput(Throughput::Elements((LAYERS * LAYER_DIM) as u64));
    group.sample_size(3);

    for (runtime, threads) in configurations() {
        // A 64Ki layer is exactly one default chunk, which would dispatch
        // inline; 16Ki chunks make every layer span 4 chunks so each of the
        // ~5 chunked passes per compress call really exercises the runtime
        // (the chunk size is identical across configurations, so outputs —
        // and the work done — stay bit-identical).
        let engine = CompressionEngine::new(threads)
            .with_runtime(runtime)
            .with_chunk_size(1 << 14);
        group.bench_with_input(
            BenchmarkId::new(
                "sidco-e",
                format!("runtime={},threads={threads}", runtime.as_str()),
            ),
            &engine,
            |b, &engine| {
                let mut compressor =
                    SidcoCompressor::new(SidcoConfig::exponential()).with_engine(engine);
                // Warm up: allocations, stage controller, lazy pool spawn.
                for grad in &layers {
                    compressor.compress(grad, DELTA);
                }
                b.iter(|| {
                    for grad in &layers {
                        compressor.compress(std::hint::black_box(grad.as_slice()), DELTA);
                    }
                });
            },
        );
    }
    group.finish();
}

fn bench_single_large(c: &mut Criterion) {
    let grad = large_gradient();
    let mut group = c.benchmark_group("runtime_single_large_16Mi");
    group.throughput(Throughput::Elements(LARGE_DIM as u64));
    group.sample_size(3);

    for (runtime, threads) in configurations() {
        let engine = CompressionEngine::new(threads).with_runtime(runtime);
        group.bench_with_input(
            BenchmarkId::new(
                "sidco-e",
                format!("runtime={},threads={threads}", runtime.as_str()),
            ),
            &engine,
            |b, &engine| {
                let mut compressor =
                    SidcoCompressor::new(SidcoConfig::exponential()).with_engine(engine);
                compressor.compress(&grad, DELTA);
                b.iter(|| compressor.compress(std::hint::black_box(&grad), DELTA));
            },
        );
    }
    group.finish();

    // Parallel delta-varint stitching on the selected survivors (the ROADMAP
    // item the encoder satellite closed): serial vs sharded.
    let engine = CompressionEngine::new(4);
    let threshold = engine.abs_moments(&grad).mean * 2.0;
    let sparse = engine.select_above(&grad, threshold);
    let mut group = c.benchmark_group("delta_varint_encode");
    group.throughput(Throughput::Elements(sparse.nnz() as u64));
    group.sample_size(5);
    group.bench_function(BenchmarkId::from_parameter("serial"), |b| {
        b.iter(|| sidco_tensor::encoding::delta_varint_encode(std::hint::black_box(&sparse)))
    });
    for threads in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("sharded", format!("threads={threads}")),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    sidco_tensor::encoding::delta_varint_encode_parallel(
                        std::hint::black_box(&sparse),
                        threads,
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_trainer_overlap(c: &mut Criterion) {
    // The trainer-level win: per-(worker, bucket) compression jobs dispatched
    // on the shared executor instead of running serially inside `step`. A
    // wide-ish MLP with per-layer buckets gives each iteration
    // `workers × buckets` independent jobs of real compression work; the
    // numerics are bit-identical across rows (property-tested), so the rows
    // differ only in wall-clock.
    let model: Arc<dyn DifferentiableModel> = Arc::new(Mlp::new(
        ClassificationDataset::gaussian_blobs(512, 64, 4, 3.0, 11),
        96,
    ));
    let mut group = c.benchmark_group("trainer_overlap_mlp_perlayer");
    group.throughput(Throughput::Elements(model.num_parameters() as u64));
    group.sample_size(3);

    // Untraced rows for every configuration, then traced rows for the two
    // flagship configurations: the delta between `…` and `…,traced` is the
    // recording overhead of an active sidco-trace session, and the untraced
    // rows double as the disabled-mode parity check against the pre-trace
    // baseline (tracing off must cost one relaxed atomic load per probe).
    let traced_rows = [(RuntimeKind::Scoped, 1usize), (RuntimeKind::Pool, 4)];
    let rows = configurations()
        .into_iter()
        .map(|(runtime, threads)| (runtime, threads, false))
        .chain(traced_rows.iter().map(|&(r, t)| (r, t, true)));
    for (runtime, threads, trace) in rows {
        let suffix = if trace { ",traced" } else { "" };
        group.bench_with_input(
            BenchmarkId::new(
                "topk",
                format!("runtime={},threads={threads}{suffix}", runtime.as_str()),
            ),
            &(runtime, threads),
            |b, &(runtime, threads)| {
                let config = TrainerConfig {
                    iterations: 4,
                    batch_per_worker: 16,
                    bucket_policy: BucketPolicy::PerLayer,
                    overlap: true,
                    trace,
                    ..TrainerConfig::default()
                };
                let mut trainer = ModelTrainer::new(
                    Arc::clone(&model),
                    ClusterConfig::small_test(),
                    config,
                    || Box::new(TopKCompressor::new()),
                )
                .with_runtime(runtime, threads);
                // Warm up: parameter init caches, lazy pool spawn.
                trainer.run(DELTA);
                b.iter(|| std::hint::black_box(trainer.run(DELTA)));
            },
        );
    }
    group.finish();
}

fn report_pool_stats(_c: &mut Criterion) {
    for threads in [2usize, 4] {
        let engine = CompressionEngine::new(threads).with_runtime(RuntimeKind::Pool);
        if let Some(stats) = engine.pool_stats() {
            assert_eq!(
                stats.parks - stats.unparks,
                stats.currently_parked,
                "park ledger must balance in lock-consistent snapshots"
            );
            println!(
                "pool[threads={threads}]: spawned={} jobs={} chunks={} local_pops={} \
                 injector_pops={} sibling_steals={} remote_steals={} parks={} unparks={} \
                 currently_parked={} socket_chunks={:?}",
                stats.threads_spawned,
                stats.jobs,
                stats.chunks_executed,
                stats.local_pops,
                stats.injector_pops,
                stats.sibling_steals,
                stats.remote_steals,
                stats.parks,
                stats.unparks,
                stats.currently_parked,
                stats.socket_chunks
            );
        }
    }
}

criterion_group!(
    benches,
    bench_many_small_layers,
    bench_single_large,
    bench_trainer_overlap,
    report_pool_stats
);
criterion_main!(benches);
