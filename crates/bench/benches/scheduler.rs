//! Criterion micro-benchmarks of the async collective scheduler: host-side
//! cost of building schedules (makespan computation) as stream count and
//! bucket count grow on a 16Mi-element model, plus the *modeled* makespans
//! those schedules charge — the numbers recorded in `BENCH_scheduler.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sidco_core::compressor::CompressorKind;
use sidco_core::layerwise::LayerLayout;
use sidco_dist::cluster::ClusterConfig;
use sidco_dist::collective::{modeled_bucket_costs, BucketCost, CollectiveScheduler};
use sidco_dist::schedule::auto_bucket_layout;
use sidco_dist::tenancy::{FleetScheduler, JobSpec, SharePolicy};
use sidco_dist::PriorityPolicy;
use sidco_models::benchmarks::BenchmarkId as Bench;
use sidco_stats::fit::SidKind;

/// 16Mi elements — the ImageNet regime of the paper's large CNNs.
const DIM: usize = 1 << 24;
const DELTA: f64 = 0.001;

fn model_costs(buckets: usize) -> Vec<BucketCost> {
    let cluster = ClusterConfig::paper_dedicated();
    let layout = LayerLayout::uniform(DIM, buckets);
    modeled_bucket_costs(
        &cluster,
        CompressorKind::Sidco(SidKind::Exponential),
        DELTA,
        2,
        &layout,
    )
}

fn bench_schedule_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_16M");
    for buckets in [4usize, 16, 64] {
        let costs = model_costs(buckets);
        for streams in [1usize, 2, 4, 8] {
            let scheduler = CollectiveScheduler::new(streams, PriorityPolicy::SmallestFirst);
            group.bench_with_input(
                BenchmarkId::new("schedule", format!("buckets={buckets}/streams={streams}")),
                &scheduler,
                |b, scheduler| b.iter(|| scheduler.schedule(std::hint::black_box(&costs))),
            );
            let makespan = scheduler.best_schedule(&costs).makespan();
            println!(
                "scheduler_16M/modeled_makespan buckets={buckets} streams={streams}: \
                 {:.6} ms",
                makespan * 1e3
            );
        }
    }
    group.finish();
}

fn bench_auto_tuner(c: &mut Criterion) {
    // A VGG-ish 16Mi-element tensor list for the layout auto-tuner.
    let mut layers: Vec<usize> = (0..23).map(|i| 1_000 << (i / 2)).collect();
    let assigned: usize = layers.iter().sum();
    layers.push(DIM - assigned);
    let cluster = ClusterConfig::paper_dedicated();
    let scheduler = CollectiveScheduler::new(4, PriorityPolicy::SmallestFirst);
    let mut group = c.benchmark_group("scheduler_auto_tune_16M");
    group.sample_size(10);
    group.bench_function("auto_bucket_layout", |b| {
        b.iter(|| {
            auto_bucket_layout(
                std::hint::black_box(&layers),
                &cluster,
                CompressorKind::Sidco(SidKind::Exponential),
                0.01,
                &scheduler,
            )
        })
    });
    let layout = auto_bucket_layout(
        &layers,
        &cluster,
        CompressorKind::Sidco(SidKind::Exponential),
        0.01,
        &scheduler,
    );
    println!(
        "scheduler_auto_tune_16M: tuned to {} buckets (largest {} elements)",
        layout.len(),
        layout.sizes().iter().max().unwrap()
    );
    group.finish();
}

/// The 4-job mixed fleet the overlap goldens pin: two ResNet20 tenants, a
/// VGG16 and an LSTM-PTB, all arriving together on the dedicated testbed.
fn fleet_jobs() -> Vec<JobSpec> {
    vec![
        JobSpec::new("resnet20-a", Bench::ResNet20Cifar10, 0.01)
            .with_iterations(6)
            .with_priority_class(2),
        JobSpec::new("resnet20-b", Bench::ResNet20Cifar10, 0.01)
            .with_iterations(6)
            .with_priority_class(0),
        JobSpec::new("vgg16", Bench::Vgg16Cifar10, 0.02)
            .with_iterations(4)
            .with_priority_class(1),
        JobSpec::new("lstm-ptb", Bench::LstmPtb, 0.005)
            .with_iterations(3)
            .with_priority_class(3),
    ]
}

fn bench_fleet(c: &mut Criterion) {
    let jobs = fleet_jobs();
    let mut group = c.benchmark_group("fleet_4job");
    for policy in SharePolicy::ALL {
        let scheduler = FleetScheduler::new(ClusterConfig::paper_dedicated(), policy);
        group.bench_with_input(
            BenchmarkId::new("simulate", policy.as_str()),
            &scheduler,
            |b, scheduler| b.iter(|| scheduler.simulate(std::hint::black_box(&jobs))),
        );
        let report = scheduler.simulate(&jobs);
        println!(
            "fleet_4job/{}: makespan {:.6} s, fairness {:.9}, p99 {:.6} s, \
             serialized {:.6} s",
            policy.as_str(),
            report.fleet_makespan(),
            report.fairness_index(),
            report.p99_latency(),
            scheduler.serialized_end(&jobs),
        );
    }
    group.finish();
}

/// Heterogeneous-fleet smoke: the same modeled 8-bucket schedule priced on
/// the mixed 10G/25G/100G fleet and the 2x-straggler testbed against the
/// homogeneous two-tier baseline (per-node drain times and slowest-node
/// compute gating must cost the same to *build*, only the charges move),
/// plus a 2-tenant fleet arbitrating the straggler cluster's wire.
fn bench_het_fleet(c: &mut Criterion) {
    let mut group = c.benchmark_group("het_fleet");
    let clusters = [
        ("two-tier", ClusterConfig::paper_two_tier()),
        ("mixed-fleet", ClusterConfig::paper_mixed_fleet()),
        ("straggler-2x", ClusterConfig::paper_straggler()),
    ];
    let layout = LayerLayout::uniform(DIM, 8);
    for (name, cluster) in &clusters {
        let costs = modeled_bucket_costs(
            cluster,
            CompressorKind::Sidco(SidKind::Exponential),
            DELTA,
            2,
            &layout,
        );
        let scheduler = CollectiveScheduler::new(4, PriorityPolicy::SmallestFirst);
        group.bench_with_input(
            BenchmarkId::new("schedule", *name),
            &scheduler,
            |b, scheduler| b.iter(|| scheduler.schedule(std::hint::black_box(&costs))),
        );
        let makespan = scheduler.best_schedule(&costs).makespan();
        println!(
            "het_fleet/modeled_makespan {name}: {:.6} ms",
            makespan * 1e3
        );
    }
    let jobs = fleet_jobs()[..2].to_vec();
    let scheduler = FleetScheduler::new(ClusterConfig::paper_straggler(), SharePolicy::FairShare);
    group.bench_with_input(
        BenchmarkId::new("simulate", "straggler-2x-2job"),
        &scheduler,
        |b, scheduler| b.iter(|| scheduler.simulate(std::hint::black_box(&jobs))),
    );
    let report = scheduler.simulate(&jobs);
    println!(
        "het_fleet/straggler-2x fair-share 2-job: makespan {:.6} s, fairness \
         {:.9}, serialized {:.6} s",
        report.fleet_makespan(),
        report.fairness_index(),
        scheduler.serialized_end(&jobs),
    );
    group.finish();
}

criterion_group!(
    benches,
    bench_schedule_construction,
    bench_auto_tuner,
    bench_fleet,
    bench_het_fleet
);
criterion_main!(benches);
