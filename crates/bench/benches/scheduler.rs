//! Criterion micro-benchmarks of the async collective scheduler: host-side
//! cost of building schedules (makespan computation) as stream count and
//! bucket count grow on a 16Mi-element model, plus the *modeled* makespans
//! those schedules charge — the numbers recorded in `BENCH_scheduler.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sidco_core::compressor::CompressorKind;
use sidco_core::layerwise::LayerLayout;
use sidco_dist::cluster::ClusterConfig;
use sidco_dist::collective::{modeled_bucket_costs, BucketCost, CollectiveScheduler};
use sidco_dist::schedule::auto_bucket_layout;
use sidco_dist::PriorityPolicy;
use sidco_stats::fit::SidKind;

/// 16Mi elements — the ImageNet regime of the paper's large CNNs.
const DIM: usize = 1 << 24;
const DELTA: f64 = 0.001;

fn model_costs(buckets: usize) -> Vec<BucketCost> {
    let cluster = ClusterConfig::paper_dedicated();
    let layout = LayerLayout::uniform(DIM, buckets);
    modeled_bucket_costs(
        &cluster,
        CompressorKind::Sidco(SidKind::Exponential),
        DELTA,
        2,
        &layout,
    )
}

fn bench_schedule_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_16M");
    for buckets in [4usize, 16, 64] {
        let costs = model_costs(buckets);
        for streams in [1usize, 2, 4, 8] {
            let scheduler = CollectiveScheduler::new(streams, PriorityPolicy::SmallestFirst);
            group.bench_with_input(
                BenchmarkId::new("schedule", format!("buckets={buckets}/streams={streams}")),
                &scheduler,
                |b, scheduler| b.iter(|| scheduler.schedule(std::hint::black_box(&costs))),
            );
            let makespan = scheduler.best_schedule(&costs).makespan();
            println!(
                "scheduler_16M/modeled_makespan buckets={buckets} streams={streams}: \
                 {:.6} ms",
                makespan * 1e3
            );
        }
    }
    group.finish();
}

fn bench_auto_tuner(c: &mut Criterion) {
    // A VGG-ish 16Mi-element tensor list for the layout auto-tuner.
    let mut layers: Vec<usize> = (0..23).map(|i| 1_000 << (i / 2)).collect();
    let assigned: usize = layers.iter().sum();
    layers.push(DIM - assigned);
    let cluster = ClusterConfig::paper_dedicated();
    let scheduler = CollectiveScheduler::new(4, PriorityPolicy::SmallestFirst);
    let mut group = c.benchmark_group("scheduler_auto_tune_16M");
    group.sample_size(10);
    group.bench_function("auto_bucket_layout", |b| {
        b.iter(|| {
            auto_bucket_layout(
                std::hint::black_box(&layers),
                &cluster,
                CompressorKind::Sidco(SidKind::Exponential),
                0.01,
                &scheduler,
            )
        })
    });
    let layout = auto_bucket_layout(
        &layers,
        &cluster,
        CompressorKind::Sidco(SidKind::Exponential),
        0.01,
        &scheduler,
    );
    println!(
        "scheduler_auto_tune_16M: tuned to {} buckets (largest {} elements)",
        layout.len(),
        layout.sizes().iter().max().unwrap()
    );
    group.finish();
}

criterion_group!(benches, bench_schedule_construction, bench_auto_tuner);
criterion_main!(benches);
