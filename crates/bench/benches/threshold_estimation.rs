//! Criterion micro-benchmark: cost of the threshold *estimation* alone (no
//! selection scan), comparing the three SID estimators, the exact-quantile gamma
//! variant, and exact Top-k selection of the threshold.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sidco_models::synthetic::{GradientProfile, SyntheticGradientGenerator};
use sidco_stats::fit::SidKind;
use sidco_stats::fit::{
    exponential_threshold, gamma_threshold, gamma_threshold_exact, gaussian_threshold, gp_threshold,
};
use sidco_stats::pot::multi_stage_threshold;
use sidco_tensor::topk::kth_largest_magnitude;

const DIM: usize = 1_000_000;
const DELTA: f64 = 0.001;

fn gradient() -> Vec<f32> {
    let mut generator = SyntheticGradientGenerator::new(DIM, GradientProfile::SparseGamma, 11);
    generator.gradient(2_000).into_vec()
}

fn bench_estimators(c: &mut Criterion) {
    let grad = gradient();
    let mut group = c.benchmark_group("threshold_estimation");
    group.throughput(Throughput::Elements(DIM as u64));
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    group.bench_function(
        BenchmarkId::from_parameter("exponential_single_stage"),
        |b| b.iter(|| exponential_threshold(std::hint::black_box(&grad), DELTA)),
    );
    group.bench_function(BenchmarkId::from_parameter("gamma_closed_form"), |b| {
        b.iter(|| gamma_threshold(std::hint::black_box(&grad), DELTA))
    });
    group.bench_function(BenchmarkId::from_parameter("gamma_exact_quantile"), |b| {
        b.iter(|| gamma_threshold_exact(std::hint::black_box(&grad), DELTA))
    });
    group.bench_function(BenchmarkId::from_parameter("generalized_pareto"), |b| {
        b.iter(|| gp_threshold(std::hint::black_box(&grad), DELTA))
    });
    group.bench_function(BenchmarkId::from_parameter("gaussian"), |b| {
        b.iter(|| gaussian_threshold(std::hint::black_box(&grad), DELTA))
    });
    for stages in [1usize, 2, 3, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("multi_stage_exponential_M{stages}")),
            &stages,
            |b, &stages| {
                b.iter(|| {
                    multi_stage_threshold(
                        std::hint::black_box(&grad),
                        SidKind::Exponential,
                        DELTA,
                        0.25,
                        stages,
                    )
                })
            },
        );
    }
    group.bench_function(BenchmarkId::from_parameter("exact_topk_threshold"), |b| {
        let k = (DIM as f64 * DELTA) as usize;
        b.iter(|| kth_largest_magnitude(std::hint::black_box(&grad), k))
    });
    group.finish();
}

criterion_group!(benches, bench_estimators);
criterion_main!(benches);
