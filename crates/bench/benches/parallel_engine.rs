//! Criterion micro-benchmarks of the sharded parallel compression engine:
//! single- vs multi-thread throughput of the full fit → threshold → select
//! pipeline and of the individual primitives on a ≥16M-element SID-shaped
//! gradient (the ImageNet regime of the paper), plus the end-to-end
//! compression↔communication overlap speed-up of the bucketed trainer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sidco_core::engine::CompressionEngine;
use sidco_core::prelude::*;
use sidco_dist::cluster::ClusterConfig;
use sidco_dist::trainer::{ModelTrainer, TrainerConfig};
use sidco_dist::LrSchedule;
use sidco_models::dataset::RegressionDataset;
use sidco_models::regression::LinearRegression;
use sidco_models::synthetic::{GradientProfile, SyntheticGradientGenerator};
use std::sync::Arc;

/// ImageNet-regime gradient size (16Mi elements, comparable to ResNet-50's
/// 25.5M and well past the 16M floor of the acceptance criterion).
const DIM: usize = 1 << 24;
const DELTA: f64 = 0.001;

fn sid_shaped_gradient() -> Vec<f32> {
    let mut generator = SyntheticGradientGenerator::new(DIM, GradientProfile::LaplaceLike, 7);
    generator.gradient(0).into_vec()
}

fn bench_engine_pipeline(c: &mut Criterion) {
    // Context for the 1-vs-N comparisons below: threads beyond the host's
    // cores cannot speed anything up, so print what this machine offers.
    println!(
        "host parallelism: {} hardware threads",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let grad = sid_shaped_gradient();
    let mut group = c.benchmark_group("engine_sidco_pipeline_16M");
    group.throughput(Throughput::Elements(DIM as u64));
    group.sample_size(5);

    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("sidco-e", format!("threads={threads}")),
            &threads,
            |b, &threads| {
                let mut compressor = SidcoCompressor::new(SidcoConfig::exponential())
                    .with_engine(CompressionEngine::new(threads));
                compressor.compress(&grad, DELTA);
                b.iter(|| compressor.compress(std::hint::black_box(&grad), DELTA));
            },
        );
    }
    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("topk-chunked", format!("threads={threads}")),
            &threads,
            |b, &threads| {
                let mut compressor =
                    TopKCompressor::new().with_engine(CompressionEngine::new(threads));
                b.iter(|| compressor.compress(std::hint::black_box(&grad), DELTA));
            },
        );
    }
    group.finish();
}

fn bench_engine_primitives(c: &mut Criterion) {
    let grad = sid_shaped_gradient();
    let mut group = c.benchmark_group("engine_primitives_16M");
    group.throughput(Throughput::Elements(DIM as u64));
    group.sample_size(5);

    for threads in [1usize, 4] {
        let engine = CompressionEngine::new(threads);
        let threshold = engine.abs_moments(&grad).mean * 4.0;
        group.bench_with_input(
            BenchmarkId::new("abs_moments", format!("threads={threads}")),
            &engine,
            |b, engine| b.iter(|| engine.abs_moments(std::hint::black_box(&grad))),
        );
        group.bench_with_input(
            BenchmarkId::new("select_above", format!("threads={threads}")),
            &engine,
            |b, engine| b.iter(|| engine.select_above(std::hint::black_box(&grad), threshold)),
        );
        let sparse = engine.select_above(&grad, threshold);
        group.bench_with_input(
            BenchmarkId::new("encode", format!("threads={threads}")),
            &engine,
            |b, engine| b.iter(|| engine.encode(std::hint::black_box(&sparse))),
        );
    }
    group.finish();
}

fn bench_trainer_overlap(c: &mut Criterion) {
    let model: Arc<dyn sidco_models::DifferentiableModel> = Arc::new(LinearRegression::new(
        RegressionDataset::generate(256, 512, 0.01, 5),
    ));
    let mut group = c.benchmark_group("trainer_overlap");
    group.sample_size(3);

    for overlap in [false, true] {
        let config = TrainerConfig {
            iterations: 30,
            batch_per_worker: 16,
            schedule: LrSchedule::constant(0.05),
            buckets: 8,
            overlap,
            ..TrainerConfig::default()
        };
        let model = Arc::clone(&model);
        group.bench_with_input(
            BenchmarkId::new("bucketed_trainer", format!("overlap={overlap}")),
            &overlap,
            |b, _| {
                b.iter(|| {
                    let mut trainer = ModelTrainer::new(
                        Arc::clone(&model),
                        ClusterConfig::paper_dedicated(),
                        config.clone(),
                        || Box::new(TopKCompressor::new()),
                    );
                    trainer.run(0.01)
                });
            },
        );
        // Report the *simulated* end-to-end effect (the timed numbers above
        // only cover host-side work, which overlap does not change).
        let mut trainer = ModelTrainer::new(
            Arc::clone(&model),
            ClusterConfig::paper_dedicated(),
            config,
            || Box::new(TopKCompressor::new()),
        );
        let report = trainer.run(0.01);
        let acc = report.overlap().expect("compressed run");
        println!(
            "trainer_overlap/overlap={overlap}: simulated total {:.6}s, \
             overhead speed-up {:.3}x ({} buckets)",
            report.total_time(),
            acc.speedup(),
            acc.buckets()
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_engine_pipeline,
    bench_engine_primitives,
    bench_trainer_overlap
);
criterion_main!(benches);
