//! Criterion micro-benchmark: wall-clock compression latency of every scheme on a
//! VGG16-like gradient (the measured counterpart of the paper's Figure 1b / 15,
//! CPU device).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sidco_core::compressor::CompressorKind;
use sidco_dist::simulate::build_compressor;
use sidco_models::synthetic::{GradientProfile, SyntheticGradientGenerator};
use sidco_stats::fit::SidKind;

const DIM: usize = 1_000_000;

fn gradient() -> Vec<f32> {
    let mut generator = SyntheticGradientGenerator::new(DIM, GradientProfile::SparseGamma, 7);
    generator.gradient(2_000).into_vec()
}

fn bench_compressors(c: &mut Criterion) {
    let grad = gradient();
    let mut group = c.benchmark_group("compression_vgg16_like");
    group.throughput(Throughput::Elements(DIM as u64));
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    for &delta in &[0.1f64, 0.01, 0.001] {
        for kind in [
            CompressorKind::TopK,
            CompressorKind::Dgc,
            CompressorKind::RedSync,
            CompressorKind::GaussianKSgd,
            CompressorKind::Sidco(SidKind::Exponential),
            CompressorKind::Sidco(SidKind::Gamma),
            CompressorKind::Sidco(SidKind::GeneralizedPareto),
        ] {
            let label = format!("{}/delta={delta}", kind.label());
            group.bench_with_input(BenchmarkId::from_parameter(label), &delta, |b, &delta| {
                let mut compressor = build_compressor(kind, 0).expect("compressed scheme");
                // Warm the adaptive state outside the measurement.
                compressor.compress(&grad, delta);
                b.iter(|| compressor.compress(std::hint::black_box(&grad), delta));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_compressors);
criterion_main!(benches);
