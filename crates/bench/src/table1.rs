//! Table 1: the benchmark matrix.

use crate::report::Table;
use sidco_models::benchmarks::BenchmarkId;

/// Regenerates Table 1 (the benchmark summary used throughout the evaluation).
pub fn run() -> String {
    let mut table = Table::new(
        "Table 1 — benchmarks used in this work",
        &[
            "benchmark",
            "task",
            "model",
            "dataset",
            "parameters",
            "batch/worker",
            "lr",
            "epochs",
            "comm overhead",
            "optimizer",
            "quality metric",
        ],
    );
    for id in BenchmarkId::ALL {
        let s = id.spec();
        table.row(&[
            s.name.to_string(),
            format!("{:?}", s.task),
            s.model.to_string(),
            s.dataset.to_string(),
            s.parameters.to_string(),
            s.per_worker_batch.to_string(),
            s.learning_rate.to_string(),
            s.epochs.to_string(),
            format!("{:.0}%", s.communication_overhead * 100.0),
            format!("{:?}", s.optimizer),
            s.quality_metric.to_string(),
        ]);
    }
    let out = table.render();
    println!("{out}");
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn table1_lists_all_six_benchmarks() {
        let out = super::run();
        for name in [
            "LSTM-PTB",
            "LSTM-AN4",
            "ResNet20-CIFAR10",
            "VGG16-CIFAR10",
            "ResNet50-ImageNet",
            "VGG19-ImageNet",
        ] {
            assert!(out.contains(name), "missing {name}");
        }
        assert!(out.contains("66034000"));
        assert!(out.contains("94%"));
    }
}
