//! Benchmark harness for the SIDCo reproduction.
//!
//! Every table and figure of the paper's evaluation has a corresponding experiment
//! function here, invoked through the `sidco-experiments` binary:
//!
//! | paper artefact | module / function |
//! |---|---|
//! | Table 1 | [`table1::run`] |
//! | Figure 1 (compression speed-up + estimation quality) | [`micro::fig1`] |
//! | Figure 2 (SID fits, no EC) | [`fitting::fig2`] |
//! | Figure 3 (LSTM-PTB / LSTM-AN4 end-to-end) | [`end_to_end::fig3`] |
//! | Figure 4 (loss + ratio tracking at δ=0.001) | [`training::fig4`] |
//! | Figure 5 (ResNet20 / VGG16 on CIFAR-10) | [`end_to_end::fig5`] |
//! | Figure 6 (ResNet50 / VGG19 on ImageNet) | [`end_to_end::fig6`] |
//! | Figure 7 (gradient compressibility) | [`fitting::fig7`] |
//! | Figure 8 (SID fits with EC) | [`fitting::fig8`] |
//! | Figure 9 (smoothed achieved ratio) | [`end_to_end::fig9`] |
//! | Figure 10 (loss vs wall-time) | [`training::fig10`] |
//! | Figure 11 (VGG19 ratio + loss) | [`training::fig11`] |
//! | Figure 12 (CPU as compression device) | [`end_to_end::fig12`] |
//! | Figure 13 (single 8-GPU node) | [`end_to_end::fig13`] |
//! | Figures 14/15 (per-model speed-up / latency) | [`micro::fig14_15`] |
//! | Figures 16/17 (synthetic tensors) | [`micro::fig16_17`] |
//! | Figure 18 (all SIDs end-to-end) | [`end_to_end::fig18`] |
//! | Design-choice ablations (DESIGN.md §5) | [`ablation`] |
//!
//! Each function prints a self-describing text report (the "rows/series" of the
//! corresponding figure) and returns it as a `String` so integration tests can
//! assert on the content. Pass `Scale::Quick` for CI-sized runs and `Scale::Full`
//! for the paper-scale sweeps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod end_to_end;
pub mod fitting;
pub mod micro;
pub mod report;
pub mod table1;
pub mod training;

/// How large an experiment to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced iteration counts and tensor sizes; finishes in seconds. Used by tests.
    Quick,
    /// Paper-scale sweep (minutes).
    Full,
}

impl Scale {
    /// Picks between the quick and full value.
    pub fn pick<T>(&self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}
