//! Real-model training experiments: loss curves and ratio tracking
//! (Figures 4, 10 and 11).
//!
//! These experiments train the analytic workloads of `sidco-models` end-to-end with
//! every compression scheme, so the loss trajectories (and the divergence of the
//! badly-estimating schemes at aggressive ratios) are genuine training outcomes, not
//! simulations. Wall-clock time on the x-axis of Figure 10 is the *simulated*
//! iteration time (compute + compression + communication) of the 8-worker cluster.

use crate::report::{fmt, Table};
use crate::Scale;
use sidco_core::compressor::CompressorKind;
use sidco_dist::cluster::ClusterConfig;
use sidco_dist::metrics::TrainingReport;
use sidco_dist::simulate::build_compressor;
use sidco_dist::trainer::{ModelTrainer, TrainerConfig};
use sidco_dist::LrSchedule;
use sidco_models::dataset::{ClassificationDataset, SequenceDataset};
use sidco_models::logistic::SoftmaxClassifier;
use sidco_models::mlp::Mlp;
use sidco_models::rnn::ElmanRnn;
use sidco_models::DifferentiableModel;
use sidco_stats::fit::SidKind;
use std::sync::Arc;

const CURVE_SCHEMES: [CompressorKind; 6] = [
    CompressorKind::None,
    CompressorKind::TopK,
    CompressorKind::Dgc,
    CompressorKind::RedSync,
    CompressorKind::GaussianKSgd,
    CompressorKind::Sidco(SidKind::Exponential),
];

/// Builds the RNN proxy workload (stands in for the LSTM benchmarks).
fn rnn_workload(scale: Scale) -> Arc<dyn DifferentiableModel> {
    let data = SequenceDataset::generate(scale.pick(128, 512), 12, 4, 77);
    Arc::new(ElmanRnn::new(data, scale.pick(12, 24)))
}

/// Builds the CNN proxy workload (stands in for the CIFAR-10 / ImageNet CNNs).
fn cnn_workload(scale: Scale) -> Arc<dyn DifferentiableModel> {
    let data = ClassificationDataset::gaussian_blobs(scale.pick(256, 1_024), 32, 8, 6.0, 78);
    Arc::new(Mlp::new(data, scale.pick(16, 48)))
}

/// Builds the larger softmax workload used for the VGG19-style Figure 11 run.
fn large_classifier_workload(scale: Scale) -> Arc<dyn DifferentiableModel> {
    let data = ClassificationDataset::gaussian_blobs(scale.pick(256, 2_048), 64, 10, 6.0, 79);
    Arc::new(SoftmaxClassifier::new(data))
}

fn train(
    model: &Arc<dyn DifferentiableModel>,
    kind: CompressorKind,
    delta: f64,
    iterations: u64,
    clip: Option<f64>,
) -> TrainingReport {
    let config = TrainerConfig {
        iterations,
        batch_per_worker: 16,
        schedule: LrSchedule::constant(0.3),
        clip_norm: clip,
        // Charge each scheme its own modelled latency so the loss-vs-time
        // axes of Figures 10/11 actually separate the schemes.
        compressor_kind: (kind != CompressorKind::None).then_some(kind),
        ..TrainerConfig::default()
    };
    let cluster = ClusterConfig::paper_dedicated();
    match kind {
        CompressorKind::None => {
            ModelTrainer::uncompressed(Arc::clone(model), cluster, config).run(1.0)
        }
        _ => ModelTrainer::new(Arc::clone(model), cluster, config, || {
            // INVARIANT: the None arm was matched above, and None is the only
            // kind build_compressor rejects.
            build_compressor(kind, 3).expect("compressed scheme")
        })
        .run(delta),
    }
}

/// Samples a loss curve at 5 evenly spaced points.
fn curve_summary(report: &TrainingReport) -> Vec<f64> {
    let losses: Vec<f64> = report.samples().iter().map(|s| s.loss).collect();
    if losses.is_empty() {
        return vec![f64::NAN; 5];
    }
    (0..5)
        .map(|i| {
            let idx = ((losses.len() - 1) as f64 * i as f64 / 4.0).round() as usize;
            losses[idx]
        })
        .collect()
}

/// Figure 4: training loss vs iteration and threshold-estimation quality at
/// δ = 0.001 for the two RNN workloads.
pub fn fig4(scale: Scale) -> String {
    let delta = 0.001;
    let iterations = scale.pick(60, 300);
    let mut out = String::new();
    for (label, model) in [
        (
            "Figure 4(a,b) — RNN proxy for LSTM-PTB",
            rnn_workload(scale),
        ),
        (
            "Figure 4(c,d) — RNN proxy for LSTM-AN4",
            rnn_workload(scale),
        ),
    ] {
        let mut table = Table::new(
            format!("{label}, δ = {delta}"),
            &[
                "scheme",
                "loss@0%",
                "loss@25%",
                "loss@50%",
                "loss@75%",
                "loss@100%",
                "k̂/k mean",
            ],
        );
        for kind in CURVE_SCHEMES {
            let report = train(&model, kind, delta, iterations, Some(5.0));
            let curve = curve_summary(&report);
            let mut cells = vec![kind.label().to_string()];
            cells.extend(curve.iter().map(|&l| fmt(l)));
            cells.push(if kind == CompressorKind::None {
                "-".to_string()
            } else {
                fmt(report.estimation_quality().mean_normalized_ratio)
            });
            table.row(&cells);
        }
        out.push_str(&table.render());
        out.push('\n');
    }
    println!("{out}");
    out
}

/// Figure 10: training loss vs simulated wall-time for the RNN and CNN proxies at
/// every ratio.
pub fn fig10(scale: Scale) -> String {
    let iterations = scale.pick(50, 250);
    let mut out = String::new();
    for (label, model) in [
        ("Figure 10 — RNN proxy", rnn_workload(scale)),
        ("Figure 10 — CNN proxy", cnn_workload(scale)),
    ] {
        for &delta in &[0.1, 0.01, 0.001] {
            let mut table = Table::new(
                format!("{label}, δ = {delta}: loss vs simulated wall-time"),
                &[
                    "scheme",
                    "total time (s)",
                    "final loss",
                    "time to 90% of baseline drop (s)",
                ],
            );
            // Baseline first, to define the convergence target.
            let baseline = train(&model, CompressorKind::None, 1.0, iterations, None);
            let initial = baseline
                .samples()
                .first()
                .map(|s| s.loss)
                .unwrap_or(f64::NAN);
            let target = initial - 0.9 * (initial - baseline.final_loss());
            for kind in CURVE_SCHEMES {
                let report = if kind == CompressorKind::None {
                    baseline.clone()
                } else {
                    train(&model, kind, delta, iterations, None)
                };
                table.row(&[
                    kind.label().to_string(),
                    fmt(report.total_time()),
                    fmt(report.final_loss()),
                    report
                        .time_to_loss(target)
                        .map(fmt)
                        .unwrap_or_else(|| "not reached".to_string()),
                ]);
            }
            out.push_str(&table.render());
            out.push('\n');
        }
    }
    println!("{out}");
    out
}

/// Figure 11: VGG19-style run at δ = 0.001 — smoothed achieved ratio plus the loss
/// trajectory.
pub fn fig11(scale: Scale) -> String {
    let delta = 0.001;
    let iterations = scale.pick(60, 300);
    let model = large_classifier_workload(scale);
    let mut out = String::new();
    let mut table = Table::new(
        "Figure 11 — VGG19-style workload, δ = 0.001",
        &[
            "scheme",
            "k̂/k start",
            "k̂/k end",
            "final loss",
            "final accuracy",
        ],
    );
    for kind in CURVE_SCHEMES {
        let report = train(&model, kind, delta, iterations, None);
        let ratios = report.smoothed_ratio_history(10);
        let (start, end) = match (ratios.first(), ratios.last()) {
            (Some(&s), Some(&e)) => (s / delta, e / delta),
            _ => (f64::NAN, f64::NAN),
        };
        table.row(&[
            kind.label().to_string(),
            if kind == CompressorKind::None {
                "-".to_string()
            } else {
                fmt(start)
            },
            if kind == CompressorKind::None {
                "-".to_string()
            } else {
                fmt(end)
            },
            fmt(report.final_loss()),
            fmt(report.final_accuracy().unwrap_or(f64::NAN)),
        ]);
    }
    out.push_str(&table.render());
    println!("{out}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_trains_all_schemes() {
        let out = fig4(Scale::Quick);
        assert!(out.contains("Figure 4"));
        assert!(out.contains("SIDCo-E"));
        assert!(out.contains("NoComp"));
    }

    #[test]
    fn fig11_reports_ratio_tracking() {
        let out = fig11(Scale::Quick);
        assert!(out.contains("Figure 11"));
        assert!(out.contains("GaussK"));
    }
}
