//! Ablations of SIDCo's design choices (DESIGN.md §5).
//!
//! * number of estimation stages at an aggressive ratio;
//! * sensitivity to the first-stage ratio δ₁;
//! * stage-adaptation window `Q` and tolerance ε;
//! * gamma fitting: Minka closed form vs exact MLE vs exact quantile;
//! * peaks-over-threshold refit vs naive reuse of the first-stage fit.

use crate::report::{fmt, Table};
use crate::Scale;
use sidco_core::sidco::{SidcoCompressor, SidcoConfig};
use sidco_core::Compressor;
use sidco_models::synthetic::{GradientProfile, SyntheticGradientGenerator};
use sidco_stats::fit::{exponential_threshold, gamma_threshold, gamma_threshold_exact, SidKind};
use sidco_stats::pot::multi_stage_threshold;
use sidco_tensor::threshold::count_above_threshold;
use std::time::Instant;

fn gradient(profile: GradientProfile, dim: usize, seed: u64) -> Vec<f32> {
    let mut generator = SyntheticGradientGenerator::new(dim, profile, seed);
    generator.gradient(3_000).into_vec()
}

fn achieved(grad: &[f32], threshold: f64) -> f64 {
    count_above_threshold(grad, threshold) as f64 / grad.len() as f64
}

/// Ablation: single-stage vs multi-stage estimation across SIDs and tail profiles,
/// at δ = 0.001.
pub fn stages(scale: Scale) -> String {
    let dim = scale.pick(200_000, 1_000_000);
    let delta = 0.001;
    let mut table = Table::new(
        "Ablation — estimation stages at δ = 0.001 (achieved/target ratio)",
        &["profile", "SID", "M=1", "M=2", "M=3", "M=4"],
    );
    for profile in [
        GradientProfile::LaplaceLike,
        GradientProfile::SparseGamma,
        GradientProfile::HeavyTail,
        GradientProfile::Gaussian,
    ] {
        let grad = gradient(profile, dim, 31);
        for sid in SidKind::ALL {
            let mut cells = vec![profile.to_string(), sid.to_string()];
            for stages in 1..=4 {
                match multi_stage_threshold(&grad, sid, delta, 0.25, stages) {
                    Ok(est) => {
                        cells.push(fmt(achieved(&grad, est.final_threshold()) / delta));
                    }
                    Err(_) => cells.push("-".to_string()),
                }
            }
            table.row(&cells);
        }
    }
    let out = table.render();
    println!("{out}");
    out
}

/// Ablation: sensitivity of the two-stage estimator to the first-stage ratio δ₁.
pub fn delta1(scale: Scale) -> String {
    let dim = scale.pick(200_000, 1_000_000);
    let delta = 0.001;
    let grad = gradient(GradientProfile::SparseGamma, dim, 37);
    let mut table = Table::new(
        "Ablation — first-stage ratio δ₁ (two-stage SIDCo-E, δ = 0.001)",
        &["δ₁", "achieved/target", "threshold"],
    );
    for &d1 in &[0.05, 0.1, 0.25, 0.5, 0.75] {
        let est = multi_stage_threshold(&grad, SidKind::Exponential, delta, d1, 2)
            // INVARIANT: synthetic gradients are dense and non-constant, so
            // threshold estimation cannot degenerate.
            .expect("non-degenerate gradient");
        table.row(&[
            d1.to_string(),
            fmt(achieved(&grad, est.final_threshold()) / delta),
            fmt(est.final_threshold()),
        ]);
    }
    let out = table.render();
    println!("{out}");
    out
}

/// Ablation: stage-adaptation window `Q` and tolerance ε — how fast the controller
/// settles and where it lands.
pub fn adaptation(scale: Scale) -> String {
    let dim = scale.pick(150_000, 600_000);
    let delta = 0.001;
    let iterations = scale.pick(30, 100);
    let mut table = Table::new(
        "Ablation — stage-adaptation window Q and tolerance ε (SIDCo-E, heavy-tail, δ = 0.001)",
        &[
            "Q",
            "ε",
            "final stages M",
            "mean k̂/k (last half)",
            "iterations",
        ],
    );
    let mut generator = SyntheticGradientGenerator::new(dim, GradientProfile::HeavyTail, 41);
    let grads: Vec<Vec<f32>> = (0..iterations)
        .map(|i| generator.gradient(i as u64 * 20).into_vec())
        .collect();
    for &q in &[1usize, 5, 20] {
        for &eps in &[0.1f64, 0.2, 0.4] {
            let config = SidcoConfig {
                adaptation_period: q,
                epsilon_high: eps,
                epsilon_low: eps,
                ..SidcoConfig::exponential()
            };
            let mut compressor = SidcoCompressor::new(config);
            let mut late_ratios = Vec::new();
            for (i, grad) in grads.iter().enumerate() {
                let result = compressor.compress(grad, delta);
                if i >= grads.len() / 2 {
                    late_ratios.push(result.achieved_ratio() / delta);
                }
            }
            let mean_late = late_ratios.iter().sum::<f64>() / late_ratios.len().max(1) as f64;
            table.row(&[
                q.to_string(),
                eps.to_string(),
                compressor.current_stages().to_string(),
                fmt(mean_late),
                iterations.to_string(),
            ]);
        }
    }
    let out = table.render();
    println!("{out}");
    out
}

/// Ablation: gamma threshold — Minka closed-form approximation vs the exact inverse
/// incomplete-gamma quantile, in accuracy and cost.
pub fn gamma_fit(scale: Scale) -> String {
    let dim = scale.pick(200_000, 1_000_000);
    let grad = gradient(GradientProfile::SparseGamma, dim, 43);
    let mut table = Table::new(
        "Ablation — gamma threshold: closed form vs exact quantile",
        &[
            "δ",
            "closed-form η",
            "exact η",
            "rel. diff",
            "closed-form µs",
            "exact µs",
        ],
    );
    for &delta in &[0.1, 0.01, 0.001] {
        let start = Instant::now();
        let approx = gamma_threshold(&grad, delta);
        let t_approx = start.elapsed().as_secs_f64() * 1e6;
        let start = Instant::now();
        let exact = gamma_threshold_exact(&grad, delta);
        let t_exact = start.elapsed().as_secs_f64() * 1e6;
        table.row(&[
            delta.to_string(),
            fmt(approx),
            fmt(exact),
            fmt((approx - exact).abs() / exact.max(1e-30)),
            fmt(t_approx),
            fmt(t_exact),
        ]);
    }
    let out = table.render();
    println!("{out}");
    out
}

/// Ablation: the peaks-over-threshold refit vs naively extrapolating the first-stage
/// exponential fit to the final ratio (what a single-stage estimator does).
pub fn pot_refit(scale: Scale) -> String {
    let dim = scale.pick(200_000, 1_000_000);
    let delta = 0.001;
    let mut table = Table::new(
        "Ablation — PoT refit vs single-stage extrapolation (δ = 0.001, achieved/target)",
        &["profile", "single-stage", "PoT 3-stage"],
    );
    for profile in [
        GradientProfile::LaplaceLike,
        GradientProfile::SparseGamma,
        GradientProfile::HeavyTail,
        GradientProfile::Gaussian,
    ] {
        let grad = gradient(profile, dim, 47);
        let single = exponential_threshold(&grad, delta);
        let multi = multi_stage_threshold(&grad, SidKind::Exponential, delta, 0.25, 3)
            // INVARIANT: synthetic gradients are dense and non-constant, so
            // threshold estimation cannot degenerate.
            .expect("non-degenerate gradient");
        table.row(&[
            profile.to_string(),
            fmt(achieved(&grad, single) / delta),
            fmt(achieved(&grad, multi.final_threshold()) / delta),
        ]);
    }
    let out = table.render();
    println!("{out}");
    out
}

/// Runs every ablation.
pub fn all(scale: Scale) -> String {
    let mut out = String::new();
    out.push_str(&stages(scale));
    out.push('\n');
    out.push_str(&delta1(scale));
    out.push('\n');
    out.push_str(&adaptation(scale));
    out.push('\n');
    out.push_str(&gamma_fit(scale));
    out.push('\n');
    out.push_str(&pot_refit(scale));
    out
}

/// Convenience used by the binary to make SIDCo a little more observable: runs one
/// compression and reports the per-stage thresholds.
pub fn describe_stages(delta: f64) -> String {
    let grad = gradient(GradientProfile::SparseGamma, 200_000, 53);
    let mut compressor = SidcoCompressor::new(SidcoConfig::exponential());
    for _ in 0..10 {
        compressor.compress(&grad, delta);
    }
    let est = compressor
        .estimate_threshold(&grad, delta)
        // INVARIANT: synthetic gradients are dense and non-constant, so
        // threshold estimation cannot degenerate.
        .expect("non-degenerate gradient");
    let mut table = Table::new(
        format!("SIDCo-E stage thresholds at δ = {delta}"),
        &["stage", "stage δ", "threshold", "survivors"],
    );
    for (i, ((eta, stage_delta), survivors)) in est
        .thresholds
        .iter()
        .zip(&est.schedule)
        .zip(&est.survivors)
        .enumerate()
    {
        table.row(&[
            (i + 1).to_string(),
            fmt(*stage_delta),
            fmt(*eta),
            survivors.to_string(),
        ]);
    }
    let out = table.render();
    println!("{out}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_ablation_shows_multi_stage_helps_on_heavy_tails() {
        let out = stages(Scale::Quick);
        assert!(out.contains("heavy-tail"));
        assert!(out.contains("M=4"));
    }

    #[test]
    fn gamma_fit_ablation_reports_costs() {
        let out = gamma_fit(Scale::Quick);
        assert!(out.contains("closed-form"));
    }

    #[test]
    fn pot_ablation_and_stage_description() {
        let out = pot_refit(Scale::Quick);
        assert!(out.contains("single-stage"));
        let out = describe_stages(0.001);
        assert!(out.contains("stage"));
    }
}
