//! `sidco-experiments` — regenerates every table and figure of the SIDCo paper.
//!
//! ```text
//! USAGE:
//!   sidco-experiments <experiment> [--full]
//!
//! EXPERIMENTS:
//!   table1     Table 1   — benchmark matrix
//!   fig1       Figure 1  — compression speed-up over Top-k + estimation quality
//!   fig2       Figure 2  — SID fits of the gradient (no EC)
//!   fig3       Figure 3  — LSTM-PTB / LSTM-AN4 end-to-end
//!   fig4       Figure 4  — loss + ratio tracking at δ=0.001 (RNN proxies)
//!   fig5       Figure 5  — ResNet20 / VGG16 on CIFAR-10
//!   fig6       Figure 6  — ResNet50 / VGG19 on ImageNet
//!   fig7       Figure 7  — gradient compressibility
//!   fig8       Figure 8  — SID fits with error feedback
//!   fig9       Figure 9  — smoothed achieved-ratio series
//!   fig10      Figure 10 — loss vs simulated wall-time
//!   fig11      Figure 11 — VGG19 ratio tracking + loss
//!   fig12      Figure 12 — CPU as the compression device
//!   fig13      Figure 13 — single 8-GPU node ImageNet runs
//!   fig14      Figures 14/15 — per-model compression speed-up / latency
//!   fig16      Figures 16/17 — synthetic-tensor compression speed-up / latency
//!   fig18      Figure 18 — all-SIDs end-to-end sweep
//!   ablations  Design-choice ablations (stages, δ₁, adaptation, gamma fit, PoT)
//!   stages     Show SIDCo's per-stage thresholds at δ=0.001
//!   all        Run everything above
//!
//! OPTIONS:
//!   --full     Paper-scale iteration counts and tensor sizes (default: quick)
//! ```

use sidco_bench::{ablation, end_to_end, fitting, micro, table1, training, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--full") {
        Scale::Full
    } else {
        Scale::Quick
    };
    let experiment = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .unwrap_or("help");

    match experiment {
        "table1" => {
            table1::run();
        }
        "fig1" => {
            micro::fig1(scale);
        }
        "fig2" => {
            fitting::fig2(scale);
        }
        "fig3" => {
            end_to_end::fig3(scale);
        }
        "fig4" => {
            training::fig4(scale);
        }
        "fig5" => {
            end_to_end::fig5(scale);
        }
        "fig6" => {
            end_to_end::fig6(scale);
        }
        "fig7" => {
            fitting::fig7(scale);
        }
        "fig8" => {
            fitting::fig8(scale);
        }
        "fig9" => {
            end_to_end::fig9(scale);
        }
        "fig10" => {
            training::fig10(scale);
        }
        "fig11" => {
            training::fig11(scale);
        }
        "fig12" => {
            end_to_end::fig12(scale);
        }
        "fig13" => {
            end_to_end::fig13(scale);
        }
        "fig14" | "fig15" => {
            micro::fig14_15(scale);
        }
        "fig16" | "fig17" => {
            micro::fig16_17(scale);
        }
        "fig18" => {
            end_to_end::fig18(scale);
        }
        "ablations" => {
            ablation::all(scale);
        }
        "stages" => {
            ablation::describe_stages(0.001);
        }
        "all" => {
            table1::run();
            micro::fig1(scale);
            fitting::fig2(scale);
            end_to_end::fig3(scale);
            training::fig4(scale);
            end_to_end::fig5(scale);
            end_to_end::fig6(scale);
            fitting::fig7(scale);
            fitting::fig8(scale);
            end_to_end::fig9(scale);
            training::fig10(scale);
            training::fig11(scale);
            end_to_end::fig12(scale);
            end_to_end::fig13(scale);
            micro::fig14_15(scale);
            micro::fig16_17(scale);
            end_to_end::fig18(scale);
            ablation::all(scale);
        }
        _ => {
            eprintln!(
                "usage: sidco-experiments <table1|fig1|fig2|...|fig18|ablations|stages|all> [--full]"
            );
            eprintln!("see the crate documentation for the experiment ↔ figure mapping");
            std::process::exit(2);
        }
    }
}
