//! Micro-benchmarks: compression speed-up over Top-k and absolute compression
//! latency (Figures 1, 14, 15, 16, 17).
//!
//! Two complementary measurements are reported:
//!
//! * **modelled** GPU/CPU latencies from the calibrated
//!   [`DeviceProfile`](sidco_dist::device::DeviceProfile) cost model at the
//!   benchmark's full parameter count (reproducing the figure's y-axes), and
//! * **measured** wall-clock CPU time of this crate's real implementations on a
//!   scaled-down gradient (ground truth for the relative ordering; also exercised by
//!   the Criterion benches).

use crate::report::{fmt, Table};
use crate::Scale;
use sidco_core::compressor::CompressorKind;
use sidco_dist::device::DeviceProfile;
use sidco_dist::simulate::build_compressor;
use sidco_models::benchmarks::BenchmarkId;
use sidco_models::synthetic::{GradientProfile, SyntheticGradientGenerator};
use sidco_stats::fit::SidKind;
use std::time::Instant;

/// The compressor set shown in Figure 1.
const FIG1_SCHEMES: [CompressorKind; 5] = [
    CompressorKind::TopK,
    CompressorKind::Dgc,
    CompressorKind::RedSync,
    CompressorKind::GaussianKSgd,
    CompressorKind::Sidco(SidKind::Exponential),
];

/// The extended set of Figures 14–17 (all three SIDCo variants).
const EXTENDED_SCHEMES: [CompressorKind; 7] = [
    CompressorKind::TopK,
    CompressorKind::Dgc,
    CompressorKind::RedSync,
    CompressorKind::GaussianKSgd,
    CompressorKind::Sidco(SidKind::Exponential),
    CompressorKind::Sidco(SidKind::Gamma),
    CompressorKind::Sidco(SidKind::GeneralizedPareto),
];

const RATIOS: [f64; 3] = [0.1, 0.01, 0.001];

/// Figure 1: compression speed-up over Top-k on GPU (a) and CPU (b), and threshold
/// estimation quality (c), on a VGG16-sized gradient.
pub fn fig1(scale: Scale) -> String {
    let full_dim = BenchmarkId::Vgg16Cifar10.spec().parameters;
    let measured_dim = scale.pick(200_000, 2_000_000);
    let mut out = String::new();

    for profile in [DeviceProfile::gpu(), DeviceProfile::cpu()] {
        let mut table = Table::new(
            format!(
                "Figure 1{} — compression speed-up over Top-k ({}), VGG16 ({} params)",
                if profile.device == sidco_dist::device::ComputeDevice::Gpu {
                    "a"
                } else {
                    "b"
                },
                profile.device,
                full_dim
            ),
            &["scheme", "δ=0.1", "δ=0.01", "δ=0.001"],
        );
        for kind in FIG1_SCHEMES.iter().skip(1) {
            let mut cells = vec![kind.label().to_string()];
            for &delta in &RATIOS {
                let stages = if matches!(kind, CompressorKind::Sidco(_)) {
                    2
                } else {
                    1
                };
                cells.push(fmt(
                    profile.speedup_over_topk(*kind, full_dim, delta, stages)
                ));
            }
            table.row(&cells);
        }
        out.push_str(&table.render());
        out.push('\n');
    }

    // (c) estimation quality on real synthetic gradients.
    let mut table = Table::new(
        "Figure 1c — normalised achieved compression ratio (k̂/k), VGG16-like gradient",
        &["scheme", "δ=0.1", "δ=0.01", "δ=0.001"],
    );
    let mut generator =
        SyntheticGradientGenerator::new(measured_dim, GradientProfile::SparseGamma, 17);
    let grad = generator.gradient(2_000);
    for kind in FIG1_SCHEMES.iter().skip(1) {
        let mut cells = vec![kind.label().to_string()];
        for &delta in &RATIOS {
            // INVARIANT: the `.skip(1)` above drops CompressorKind::None, the
            // only kind build_compressor rejects.
            let mut compressor = build_compressor(*kind, 0).expect("compressed scheme");
            let mut achieved = 0.0;
            let reps = scale.pick(6, 12);
            for _ in 0..reps {
                achieved = compressor.compress(grad.as_slice(), delta).achieved_ratio();
            }
            cells.push(fmt(achieved / delta));
        }
        table.row(&cells);
    }
    out.push_str(&table.render());
    println!("{out}");
    out
}

/// Figures 14 and 15: per-model compression speed-up over Top-k and absolute
/// latency, for ResNet20, VGG16, ResNet50 and the PTB LSTM, on both devices.
pub fn fig14_15(_scale: Scale) -> String {
    let models = [
        BenchmarkId::ResNet20Cifar10,
        BenchmarkId::Vgg16Cifar10,
        BenchmarkId::ResNet50ImageNet,
        BenchmarkId::LstmPtb,
    ];
    let mut out = String::new();
    for profile in [DeviceProfile::gpu(), DeviceProfile::cpu()] {
        for benchmark in models {
            let dim = benchmark.spec().parameters;
            let mut table = Table::new(
                format!(
                    "Figures 14/15 — {} on {} ({} params): speed-up over Top-k | latency (ms)",
                    benchmark, profile.device, dim
                ),
                &["scheme", "δ", "speed-up ×", "latency (ms)"],
            );
            for kind in EXTENDED_SCHEMES {
                for &delta in &RATIOS {
                    let stages = if matches!(kind, CompressorKind::Sidco(_)) {
                        2
                    } else {
                        1
                    };
                    let latency = profile.compression_time(kind, dim, delta, stages) * 1e3;
                    let speedup = profile.speedup_over_topk(kind, dim, delta, stages);
                    table.row(&[
                        kind.label().to_string(),
                        delta.to_string(),
                        fmt(speedup),
                        fmt(latency),
                    ]);
                }
            }
            out.push_str(&table.render());
            out.push('\n');
        }
    }
    println!("{out}");
    out
}

/// Figures 16 and 17: synthetic tensors of 0.26M–260M elements — modelled speed-up
/// and latency per device, plus measured CPU wall-clock on the sizes that fit a
/// quick run.
pub fn fig16_17(scale: Scale) -> String {
    let sizes: &[usize] = &[260_000, 2_600_000, 26_000_000, 260_000_000];
    let measured_cap = scale.pick(500_000, 5_000_000);
    let mut out = String::new();

    for profile in [DeviceProfile::gpu(), DeviceProfile::cpu()] {
        let mut table = Table::new(
            format!(
                "Figures 16/17 — synthetic tensors on {} (modelled)",
                profile.device
            ),
            &["elements", "scheme", "δ", "speed-up ×", "latency (ms)"],
        );
        for &size in sizes {
            for kind in EXTENDED_SCHEMES {
                for &delta in &RATIOS {
                    let stages = if matches!(kind, CompressorKind::Sidco(_)) {
                        2
                    } else {
                        1
                    };
                    table.row(&[
                        size.to_string(),
                        kind.label().to_string(),
                        delta.to_string(),
                        fmt(profile.speedup_over_topk(kind, size, delta, stages)),
                        fmt(profile.compression_time(kind, size, delta, stages) * 1e3),
                    ]);
                }
            }
        }
        out.push_str(&table.render());
        out.push('\n');
    }

    // Measured wall-clock CPU numbers on the sizes that are fast enough to run here.
    let mut table = Table::new(
        "Figures 16/17 — measured CPU wall-clock of this implementation",
        &[
            "elements",
            "scheme",
            "δ",
            "measured (ms)",
            "speed-up over Topk ×",
        ],
    );
    for &size in sizes.iter().filter(|&&s| s <= measured_cap) {
        let mut generator = SyntheticGradientGenerator::new(size, GradientProfile::LaplaceLike, 5);
        let grad = generator.gradient(500);
        for &delta in &[0.001f64] {
            let mut topk_ms = f64::NAN;
            for kind in [
                CompressorKind::TopK,
                CompressorKind::Dgc,
                CompressorKind::RedSync,
                CompressorKind::GaussianKSgd,
                CompressorKind::Sidco(SidKind::Exponential),
            ] {
                // INVARIANT: the list above never contains
                // CompressorKind::None, the only kind build_compressor rejects.
                let mut compressor = build_compressor(kind, 0).expect("compressed scheme");
                compressor.compress(grad.as_slice(), delta);
                let start = Instant::now();
                compressor.compress(grad.as_slice(), delta);
                let ms = start.elapsed().as_secs_f64() * 1e3;
                if kind == CompressorKind::TopK {
                    topk_ms = ms;
                }
                table.row(&[
                    size.to_string(),
                    kind.label().to_string(),
                    delta.to_string(),
                    fmt(ms),
                    fmt(topk_ms / ms),
                ]);
            }
        }
    }
    out.push_str(&table.render());
    println!("{out}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_reports_expected_orderings() {
        let out = fig1(Scale::Quick);
        assert!(out.contains("Figure 1a"));
        assert!(out.contains("Figure 1b"));
        assert!(out.contains("Figure 1c"));
        assert!(out.contains("SIDCo-E"));
        assert!(out.contains("DGC"));
    }

    #[test]
    fn fig14_15_covers_four_models_and_two_devices() {
        let out = fig14_15(Scale::Quick);
        assert_eq!(out.matches("Figures 14/15").count(), 8);
        assert!(out.contains("LSTM-PTB"));
        assert!(out.contains("SIDCo-P"));
    }

    #[test]
    fn fig16_17_covers_all_sizes() {
        let out = fig16_17(Scale::Quick);
        assert!(out.contains("260000000"));
        assert!(out.contains("measured CPU wall-clock"));
    }
}
