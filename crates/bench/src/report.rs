//! Plain-text report building: aligned tables that mirror the rows/series of the
//! paper's figures.

use std::fmt::Write as _;

/// A simple column-aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row. Shorter rows are padded with empty cells; longer rows are
    /// truncated to the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        let mut row: Vec<String> = cells.to_vec();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Convenience for rows of displayable values.
    pub fn row_display<T: std::fmt::Display>(&mut self, cells: &[T]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let mut header_line = String::new();
        for (h, w) in self.header.iter().zip(&widths) {
            let _ = write!(header_line, "{:>width$}  ", h, width = w);
        }
        let _ = writeln!(out, "{}", header_line.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(header_line.trim_end().len()));
        for row in &self.rows {
            let mut line = String::new();
            for (cell, w) in row.iter().zip(&widths) {
                let _ = write!(line, "{:>width$}  ", cell, width = w);
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }
}

/// Formats a float with a sensible number of significant digits for a report cell.
pub fn fmt(value: f64) -> String {
    if !value.is_finite() {
        return "-".to_string();
    }
    if value == 0.0 {
        return "0".to_string();
    }
    let abs = value.abs();
    if abs >= 100.0 {
        format!("{value:.1}")
    } else if abs >= 1.0 {
        format!("{value:.3}")
    } else if abs >= 0.001 {
        format!("{value:.5}")
    } else {
        format!("{value:.3e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_rows() {
        let mut t = Table::new("demo", &["scheme", "value"]);
        assert!(t.is_empty());
        t.row(&["topk".to_string(), "1.0".to_string()]);
        t.row_display(&["sidco", "41.7"]);
        assert_eq!(t.len(), 2);
        let rendered = t.render();
        assert!(rendered.contains("## demo"));
        assert!(rendered.contains("scheme"));
        assert!(rendered.contains("41.7"));
        // Every data line has the same width structure (ends aligned).
        let lines: Vec<&str> = rendered.lines().collect();
        assert!(lines.len() >= 5);
    }

    #[test]
    fn row_padding_and_truncation() {
        let mut t = Table::new("demo", &["a", "b", "c"]);
        t.row(&["1".to_string()]);
        t.row(&[
            "1".to_string(),
            "2".to_string(),
            "3".to_string(),
            "4".to_string(),
        ]);
        let rendered = t.render();
        assert!(!rendered.contains('4'), "extra cells must be dropped");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(f64::NAN), "-");
        assert_eq!(fmt(123.456), "123.5");
        assert_eq!(fmt(1.23456), "1.235");
        assert_eq!(fmt(0.01234), "0.01234");
        assert!(fmt(0.0000123).contains('e'));
    }
}
