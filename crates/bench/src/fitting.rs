//! Distribution-fitting and compressibility experiments (Figures 2, 7 and 8).

use crate::report::{fmt, Table};
use crate::Scale;
use sidco_core::error_feedback::ErrorFeedback;
use sidco_core::topk::TopKCompressor;
use sidco_models::synthetic::{GradientProfile, SyntheticGradientGenerator};
use sidco_stats::empirical::{pdf_fit_error, EmpiricalCdf, Histogram};
use sidco_stats::{DoubleGamma, DoubleGeneralizedPareto, Laplace};
use sidco_tensor::compressibility;
use sidco_tensor::GradientVector;

/// Builds the gradient snapshot used by the Figure-2/8 style fitting experiments:
/// the ResNet-20-like profile at a given "training iteration", optionally passed
/// through an error-feedback + Top-k loop first (Figure 8 studies the EC case).
fn resnet20_like_gradient(iteration: u64, with_ec: bool, scale: Scale) -> Vec<f32> {
    let dim = scale.pick(60_000, 270_000);
    let mut generator = SyntheticGradientGenerator::new(dim, GradientProfile::SparseGamma, 23);
    if !with_ec {
        return generator.gradient(iteration).into_vec();
    }
    // Replay a few iterations of Top-k + EC so the returned gradient is the
    // *corrected* gradient the compressor would actually see.
    let mut feedback = ErrorFeedback::new(dim);
    let mut compressor = TopKCompressor::new();
    let mut corrected = GradientVector::zeros(dim);
    let start = iteration.saturating_sub(10);
    for i in start..=iteration {
        let grad = generator.gradient(i);
        corrected = feedback.corrected(&grad);
        feedback.compress_with(&mut compressor, &grad, 0.001);
    }
    corrected.into_vec()
}

/// Fits the three SIDs to a gradient and reports per-fit diagnostics: PDF error
/// against the empirical histogram and the Kolmogorov–Smirnov distance of |g|.
fn fit_table(title: &str, grad: &[f32]) -> Table {
    let mut table = Table::new(
        title,
        &[
            "fit",
            "parameters",
            "pdf mean abs err",
            "KS distance of |g|",
        ],
    );
    let lo = -5.0 * sidco_stats::moments::AbsMoments::compute(grad).mean;
    let hi = -lo;
    let hist = Histogram::from_f32(grad, lo, hi, 200);
    let abs: Vec<f64> = grad.iter().map(|&x| x.abs() as f64).collect();
    let abs_ecdf = EmpiricalCdf::new(&abs);
    let grad64: Vec<f64> = grad.iter().map(|&x| x as f64).collect();

    // Double exponential.
    if let Ok(fit) = Laplace::fit_mle_zero_location(&grad64) {
        table.row(&[
            "double exponential".to_string(),
            format!("β̂={:.2e}", fit.scale()),
            fmt(pdf_fit_error(&hist, &fit)),
            fmt(abs_ecdf.ks_distance(&fit.abs_distribution())),
        ]);
    }
    // Double gamma.
    if let Ok(fit) = DoubleGamma::fit_closed_form(&grad64) {
        table.row(&[
            "double gamma".to_string(),
            format!("α̂={:.3}, β̂={:.2e}", fit.shape(), fit.scale()),
            fmt(pdf_fit_error(&hist, &fit)),
            fmt(abs_ecdf.ks_distance(&fit.abs_distribution())),
        ]);
    }
    // Double generalized Pareto.
    if let Ok(fit) = DoubleGeneralizedPareto::fit_moments(&grad64) {
        table.row(&[
            "double GP".to_string(),
            format!("α̂={:.3}, β̂={:.2e}", fit.shape(), fit.scale()),
            fmt(pdf_fit_error(&hist, &fit)),
            fmt(abs_ecdf.ks_distance(&fit.abs_distribution())),
        ]);
    }
    table
}

/// Figure 2: SID fits of the ResNet-20-like gradient at an early (100) and late
/// (10000) iteration, without error feedback.
pub fn fig2(scale: Scale) -> String {
    let mut out = String::new();
    for iteration in [100u64, 10_000] {
        let grad = resnet20_like_gradient(iteration, false, scale);
        let table = fit_table(
            &format!("Figure 2 — SID fits at iteration {iteration} (no EC)"),
            &grad,
        );
        out.push_str(&table.render());
        out.push('\n');
    }
    println!("{out}");
    out
}

/// Figure 8: the same fits with the error-feedback mechanism active — fitting gets
/// harder, especially at later iterations.
pub fn fig8(scale: Scale) -> String {
    let mut out = String::new();
    for iteration in [100u64, 10_000] {
        let grad = resnet20_like_gradient(iteration, true, scale);
        let table = fit_table(
            &format!("Figure 8 — SID fits at iteration {iteration} (with EC)"),
            &grad,
        );
        out.push_str(&table.render());
        out.push('\n');
    }
    println!("{out}");
    out
}

/// Figure 7: gradient compressibility — power-law decay of the sorted magnitudes and
/// the best-k sparsification error, at the start, middle and end of training.
pub fn fig7(scale: Scale) -> String {
    let mut out = String::new();
    let mut decay_table = Table::new(
        "Figure 7a — power-law decay of sorted gradient magnitudes",
        &[
            "epoch",
            "decay exponent p",
            "fit R²",
            "compressible (p > 1/2)",
        ],
    );
    let mut sigma_table = Table::new(
        "Figure 7b — best-k sparsification error σ_k / ||g||",
        &["epoch", "k = 1% of d", "k = 10% of d", "k = 50% of d"],
    );
    // Epoch 1, 15 and 30 of the paper's ResNet-20 run. The layered generator models
    // the per-layer magnitude disparity that gives real gradients their power-law
    // sorted profile.
    let dim = scale.pick(60_000, 270_000);
    for (epoch, iteration) in [(1u32, 100u64), (15, 5_000), (30, 10_000)] {
        let mut generator = SyntheticGradientGenerator::new(dim, GradientProfile::SparseGamma, 23);
        let grad = generator.layered_gradient(iteration, 24).into_vec();
        let report = compressibility::analyze(&grad, 0.4);
        decay_table.row(&[
            epoch.to_string(),
            fmt(report.decay_exponent),
            fmt(report.fit_r2),
            report.is_compressible().to_string(),
        ]);
        let d = grad.len();
        sigma_table.row(&[
            epoch.to_string(),
            fmt(report.relative_sparsification_error(d / 100)),
            fmt(report.relative_sparsification_error(d / 10)),
            fmt(report.relative_sparsification_error(d / 2)),
        ]);
    }
    out.push_str(&decay_table.render());
    out.push('\n');
    out.push_str(&sigma_table.render());
    println!("{out}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_fits_all_three_sids_at_both_iterations() {
        let out = fig2(Scale::Quick);
        assert_eq!(out.matches("double exponential").count(), 2);
        assert_eq!(out.matches("double gamma").count(), 2);
        assert_eq!(out.matches("double GP").count(), 2);
        assert!(out.contains("iteration 100"));
        assert!(out.contains("iteration 10000"));
    }

    #[test]
    fn fig7_reports_compressibility() {
        let out = fig7(Scale::Quick);
        assert!(out.contains("Figure 7a"));
        assert!(out.contains("Figure 7b"));
        assert!(
            out.contains("true"),
            "synthetic gradients must be compressible"
        );
    }

    #[test]
    fn fig8_runs_with_error_feedback() {
        let out = fig8(Scale::Quick);
        assert!(out.contains("with EC"));
        assert!(out.contains("double exponential"));
    }
}
