//! End-to-end benchmark experiments driven by the Table-1 simulator
//! (Figures 3, 5, 6, 9, 12, 13 and 18).

use crate::report::{fmt, Table};
use crate::Scale;
use sidco_core::compressor::CompressorKind;
use sidco_dist::cluster::ClusterConfig;
use sidco_dist::device::ComputeDevice;
use sidco_dist::simulate::{
    normalized_speedup, normalized_throughput, simulate_benchmark, SimulationConfig,
};
use sidco_models::benchmarks::{BenchmarkId, EVALUATED_RATIOS};
use sidco_stats::fit::SidKind;

/// The compressor line-up of the main end-to-end figures.
const MAIN_SCHEMES: [CompressorKind; 5] = [
    CompressorKind::TopK,
    CompressorKind::Dgc,
    CompressorKind::RedSync,
    CompressorKind::GaussianKSgd,
    CompressorKind::Sidco(SidKind::Exponential),
];

/// The all-SIDs line-up of Figure 18.
const ALL_SIDS_SCHEMES: [CompressorKind; 7] = [
    CompressorKind::TopK,
    CompressorKind::Dgc,
    CompressorKind::RedSync,
    CompressorKind::GaussianKSgd,
    CompressorKind::Sidco(SidKind::Exponential),
    CompressorKind::Sidco(SidKind::Gamma),
    CompressorKind::Sidco(SidKind::GeneralizedPareto),
];

fn simulation_config(benchmark: BenchmarkId, scale: Scale) -> SimulationConfig {
    SimulationConfig::for_benchmark(benchmark)
        .with_iterations(scale.pick(15, 60))
        .with_measured_dim(scale.pick(80_000, 500_000))
}

/// Renders the standard speed-up / throughput / estimation-quality block for one
/// benchmark across all schemes and ratios.
fn benchmark_block(
    title: &str,
    benchmark: BenchmarkId,
    cluster: ClusterConfig,
    schemes: &[CompressorKind],
    ratios: &[f64],
    scale: Scale,
) -> String {
    let config = simulation_config(benchmark, scale).with_cluster(cluster.clone());
    let baseline = simulate_benchmark(&config, CompressorKind::None, 1.0);
    let mut table = Table::new(
        title,
        &[
            "scheme",
            "δ",
            "speed-up ×",
            "throughput ×",
            "k̂/k mean",
            "k̂/k std",
            "iter time (s)",
        ],
    );
    for &kind in schemes {
        for &delta in ratios {
            let result = simulate_benchmark(&config, kind, delta);
            let quality = result.estimation_quality();
            table.row(&[
                kind.label().to_string(),
                delta.to_string(),
                fmt(normalized_speedup(&result, &baseline)),
                fmt(normalized_throughput(&result, &baseline)),
                fmt(quality.mean_normalized_ratio),
                fmt(quality.std_normalized_ratio),
                fmt(result.mean_iteration_time(3)),
            ]);
        }
    }
    let mut out = table.render();
    out.push_str(&format!(
        "baseline ({}): iter time {} s, comm fraction {}\n\n",
        benchmark,
        fmt(baseline.mean_iteration_time(3)),
        fmt(baseline.timing.timings()[0].communication_fraction()),
    ));
    out
}

/// Figure 3: LSTM-PTB and LSTM-AN4 — training speed-up, throughput and estimation
/// quality at δ ∈ {0.1, 0.01, 0.001}.
pub fn fig3(scale: Scale) -> String {
    let mut out = String::new();
    for (benchmark, label) in [
        (BenchmarkId::LstmPtb, "Figure 3(a-c) — LSTM on PTB"),
        (BenchmarkId::LstmAn4, "Figure 3(d-f) — LSTM on AN4"),
    ] {
        out.push_str(&benchmark_block(
            label,
            benchmark,
            ClusterConfig::paper_dedicated(),
            &MAIN_SCHEMES,
            &EVALUATED_RATIOS,
            scale,
        ));
    }
    println!("{out}");
    out
}

/// Figure 5: ResNet20 and VGG16 on CIFAR-10.
pub fn fig5(scale: Scale) -> String {
    let mut out = String::new();
    for (benchmark, label) in [
        (
            BenchmarkId::ResNet20Cifar10,
            "Figure 5(a,b) — ResNet20 on CIFAR-10",
        ),
        (BenchmarkId::Vgg16Cifar10, "Figure 5(c) — VGG16 on CIFAR-10"),
    ] {
        out.push_str(&benchmark_block(
            label,
            benchmark,
            ClusterConfig::paper_dedicated(),
            &MAIN_SCHEMES,
            &EVALUATED_RATIOS,
            scale,
        ));
    }
    println!("{out}");
    out
}

/// Figure 6: ResNet50 and VGG19 on ImageNet (VGG19 only at δ = 0.001, as in the
/// paper).
pub fn fig6(scale: Scale) -> String {
    let mut out = String::new();
    out.push_str(&benchmark_block(
        "Figure 6(a-c) — ResNet50 on ImageNet",
        BenchmarkId::ResNet50ImageNet,
        ClusterConfig::paper_dedicated(),
        &MAIN_SCHEMES,
        &EVALUATED_RATIOS,
        scale,
    ));
    out.push_str(&benchmark_block(
        "Figure 6(d-f) — VGG19 on ImageNet",
        BenchmarkId::Vgg19ImageNet,
        ClusterConfig::paper_dedicated(),
        &MAIN_SCHEMES,
        &[0.001],
        scale,
    ));
    println!("{out}");
    out
}

/// Figure 9: smoothed (running-average) achieved compression ratio over the run,
/// for every benchmark and ratio.
pub fn fig9(scale: Scale) -> String {
    let mut out = String::new();
    let window = 5;
    for benchmark in BenchmarkId::ALL {
        let config = simulation_config(benchmark, scale);
        for &delta in &EVALUATED_RATIOS {
            let mut table = Table::new(
                format!("Figure 9 — smoothed achieved ratio, {benchmark}, δ = {delta}"),
                &["scheme", "start", "25%", "50%", "75%", "end"],
            );
            for kind in [
                CompressorKind::Dgc,
                CompressorKind::RedSync,
                CompressorKind::GaussianKSgd,
                CompressorKind::Sidco(SidKind::Exponential),
                CompressorKind::Sidco(SidKind::Gamma),
                CompressorKind::Sidco(SidKind::GeneralizedPareto),
            ] {
                let result = simulate_benchmark(&config, kind, delta);
                let series = result.quality.smoothed_history(window);
                let pick = |frac: f64| -> f64 {
                    let idx = ((series.len() - 1) as f64 * frac).round() as usize;
                    series[idx]
                };
                table.row(&[
                    kind.label().to_string(),
                    fmt(pick(0.0)),
                    fmt(pick(0.25)),
                    fmt(pick(0.5)),
                    fmt(pick(0.75)),
                    fmt(pick(1.0)),
                ]);
            }
            out.push_str(&table.render());
            out.push('\n');
        }
    }
    println!("{out}");
    out
}

/// Figure 12: training throughput when the CPU is the compression device
/// (ResNet20, VGG16, LSTM-PTB; Top-k vs DGC vs SIDCo-E).
pub fn fig12(scale: Scale) -> String {
    let mut out = String::new();
    let schemes = [
        CompressorKind::TopK,
        CompressorKind::Dgc,
        CompressorKind::Sidco(SidKind::Exponential),
    ];
    for benchmark in [
        BenchmarkId::ResNet20Cifar10,
        BenchmarkId::Vgg16Cifar10,
        BenchmarkId::LstmPtb,
    ] {
        let cluster = ClusterConfig::paper_cpu_compression();
        let config = simulation_config(benchmark, scale).with_cluster(cluster.clone());
        let mut table = Table::new(
            format!("Figure 12 — {benchmark}, CPU compression device: throughput (samples/s)"),
            &["scheme", "δ=0.1", "δ=0.01", "δ=0.001"],
        );
        for kind in schemes {
            let mut cells = vec![kind.label().to_string()];
            for &delta in &EVALUATED_RATIOS {
                let result = simulate_benchmark(&config, kind, delta);
                cells.push(fmt(result.mean_throughput_samples(cluster.workers, 3)));
            }
            table.row(&cells);
        }
        out.push_str(&table.render());
        out.push('\n');
    }
    println!("{out}");
    out
}

/// Figure 13: full ImageNet training on a single 8-GPU node (100 Gbps InfiniBand) —
/// ResNet50 at δ=0.1 and VGG19 at δ=0.01 with all SIDs.
pub fn fig13(scale: Scale) -> String {
    let mut out = String::new();
    for (benchmark, delta) in [
        (BenchmarkId::ResNet50ImageNet, 0.1),
        (BenchmarkId::Vgg19ImageNet, 0.01),
    ] {
        out.push_str(&benchmark_block(
            &format!("Figure 13 — {benchmark} on the shared 8-GPU node, δ = {delta}"),
            benchmark,
            ClusterConfig::paper_shared_multi_gpu(),
            &ALL_SIDS_SCHEMES,
            &[delta],
            scale,
        ));
    }
    println!("{out}");
    out
}

/// Figure 18: the all-SIDs end-to-end sweep (every benchmark, every ratio, the three
/// SIDCo variants next to the baselines).
pub fn fig18(scale: Scale) -> String {
    let mut out = String::new();
    for benchmark in BenchmarkId::ALL {
        out.push_str(&benchmark_block(
            &format!("Figure 18 — {benchmark}, all SIDs"),
            benchmark,
            ClusterConfig::paper_dedicated(),
            &ALL_SIDS_SCHEMES,
            &EVALUATED_RATIOS,
            scale,
        ));
    }
    println!("{out}");
    out
}

/// Figure 12's compression device comparison lives on the CPU profile; this helper
/// exposes the device enum for the binary's `--device` flag.
pub fn device_from_flag(flag: &str) -> Option<ComputeDevice> {
    match flag {
        "gpu" => Some(ComputeDevice::Gpu),
        "cpu" => Some(ComputeDevice::Cpu),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_shows_large_speedup_for_sidco_on_ptb() {
        let out = fig3(Scale::Quick);
        assert!(out.contains("LSTM on PTB"));
        assert!(out.contains("LSTM on AN4"));
        assert!(out.contains("SIDCo-E"));
    }

    #[test]
    fn fig5_and_fig6_cover_cnn_benchmarks() {
        let out5 = fig5(Scale::Quick);
        assert!(out5.contains("ResNet20"));
        assert!(out5.contains("VGG16"));
        let out6 = fig6(Scale::Quick);
        assert!(out6.contains("ResNet50"));
        assert!(out6.contains("VGG19"));
    }

    #[test]
    fn fig12_uses_cpu_device() {
        let out = fig12(Scale::Quick);
        assert!(out.contains("CPU compression device"));
        assert_eq!(out.matches("Figure 12").count(), 3);
    }

    #[test]
    fn fig13_uses_shared_cluster() {
        let out = fig13(Scale::Quick);
        assert!(out.contains("shared 8-GPU node"));
    }

    #[test]
    fn device_flag_parsing() {
        assert_eq!(device_from_flag("gpu"), Some(ComputeDevice::Gpu));
        assert_eq!(device_from_flag("cpu"), Some(ComputeDevice::Cpu));
        assert_eq!(device_from_flag("tpu"), None);
    }
}
